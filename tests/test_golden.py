"""Golden-result regression suite for the sweep runner.

Pins down the determinism contract that makes parallel execution safe
to trust: a small representative sweep must produce *byte-identical*
merged result tables whether it runs serially, on 2 workers, or on 4 —
and those bytes must match the committed fixture in ``tests/golden/``.

Regenerate fixtures intentionally (after a change that is *supposed*
to move the numbers) with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden

and commit the diff; an unintentional diff here is a regression.
"""

import random
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments import ExperimentResult, canonical_json
from repro.obs.metrics import VOLATILE_METRIC_FAMILIES
from repro.runner import Checkpoint, SweepRunner, unit_key

GOLDEN_DIR = Path(__file__).parent / "golden"
SMOKE_FIXTURE = GOLDEN_DIR / "smoke_sweep.json"
METRICS_FIXTURE = GOLDEN_DIR / "smoke_metrics.json"
FAULT_FIXTURE = GOLDEN_DIR / "fault_replay.json"
LEDGER_FIXTURE = GOLDEN_DIR / "smoke_ledger.json"

#: A representative but cheap sweep: two per-app experiments (one
#: replay-heavy, one mask-profiling) and one whole-experiment driver.
SMOKE_EXPERIMENTS = ["fig09", "table2", "sec3.1-leakage"]
SMOKE_APPS = ("ATA", "VEC")


def _get_apps():
    from repro.kernels import get_app
    return [get_app(name) for name in SMOKE_APPS]


#: (results_json, metrics_json, trace_root_dict, ledger_json) per
#: jobs count.
#: Determinism makes re-running a given jobs count pointless, and
#: parallel sweeps pay a worker warm-up every time — so each count
#: runs once per session.
_SWEEP_CACHE = {}


def _deterministic_metrics(registry) -> str:
    """Registry snapshot minus host-measurement families (peak RSS):
    those merge deterministically but *measure* non-deterministically,
    so byte-identity fixtures must not see them."""
    snapshot = registry.to_dict()
    for family in VOLATILE_METRIC_FAMILIES:
        snapshot["families"].pop(family, None)
    return canonical_json(snapshot)


def _smoke_sweep(jobs):
    if jobs not in _SWEEP_CACHE:
        from repro.obs.ledger import normalize_events
        runner = SweepRunner(experiments=SMOKE_EXPERIMENTS,
                             apps=_get_apps(), jobs=jobs, observe=True)
        results = runner.run()
        assert runner.stats.failed == 0, runner.failed_units
        _SWEEP_CACHE[jobs] = (
            canonical_json([r.to_dict() for r in results]),
            _deterministic_metrics(runner.metrics),
            runner.tracer.root.to_dict(),
            canonical_json(normalize_events(runner.ledger.events)),
        )
    return _SWEEP_CACHE[jobs]


class TestGoldenSmokeSweep:
    """Serial and parallel runs of the smoke sweep, against the fixture."""

    def test_serial_matches_fixture(self, update_golden):
        text = _smoke_sweep(jobs=1)[0]
        if update_golden:
            GOLDEN_DIR.mkdir(exist_ok=True)
            SMOKE_FIXTURE.write_text(text, encoding="utf-8")
            pytest.skip("golden fixture regenerated; commit the diff")
        assert SMOKE_FIXTURE.exists(), (
            "missing golden fixture — generate it with "
            "`python -m pytest tests/test_golden.py --update-golden`")
        assert text == SMOKE_FIXTURE.read_text(encoding="utf-8")

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_matches_fixture_byte_identically(self, jobs,
                                                       update_golden):
        if update_golden:
            pytest.skip("fixture regeneration runs serially")
        assert _smoke_sweep(jobs=jobs)[0] == \
            SMOKE_FIXTURE.read_text(encoding="utf-8")

    def test_interrupted_parallel_sweep_resumes_cleanly(self, tmp_path,
                                                        update_golden):
        """A killed --jobs sweep must resume, skip finished units, and
        still land on the golden bytes."""
        if update_golden:
            pytest.skip("fixture regeneration runs serially")
        path = str(tmp_path / "ck.json")

        def die_after_first(key, record):
            raise KeyboardInterrupt

        killed = SweepRunner(experiments=SMOKE_EXPERIMENTS, apps=_get_apps(),
                             jobs=2, checkpoint_path=path,
                             on_unit_done=die_after_first)
        with pytest.raises(KeyboardInterrupt):
            killed.run()
        survived = len(Checkpoint.load(path))
        assert survived >= 1  # completed units outlived the kill

        resumed = SweepRunner(experiments=SMOKE_EXPERIMENTS, apps=_get_apps(),
                              jobs=2, checkpoint_path=path, resume=True)
        results = resumed.run()
        assert resumed.stats.skipped == survived      # nothing re-ran
        assert resumed.stats.run + survived == len(resumed.plan())
        assert canonical_json([r.to_dict() for r in results]) == \
            SMOKE_FIXTURE.read_text(encoding="utf-8")


class TestGoldenSmokeMetrics:
    """The merged metrics registry of the same smoke sweep, pinned to a
    fixture at every worker count.

    Metrics are published from finished artifacts (never from in-flight
    execution) and merged in sorted unit-key order, so the snapshot is
    independent of memoisation warmth, completion order, and ``jobs``.
    """

    def test_serial_metrics_match_fixture(self, update_golden):
        metrics = _smoke_sweep(jobs=1)[1]
        if update_golden:
            GOLDEN_DIR.mkdir(exist_ok=True)
            METRICS_FIXTURE.write_text(metrics, encoding="utf-8")
            pytest.skip("metrics fixture regenerated; commit the diff")
        assert METRICS_FIXTURE.exists(), (
            "missing metrics fixture — generate it with "
            "`python -m pytest tests/test_golden.py --update-golden`")
        assert metrics == METRICS_FIXTURE.read_text(encoding="utf-8")

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_metrics_match_fixture_byte_identically(
            self, jobs, update_golden):
        if update_golden:
            pytest.skip("fixture regeneration runs serially")
        assert _smoke_sweep(jobs=jobs)[1] == \
            METRICS_FIXTURE.read_text(encoding="utf-8")


class TestGoldenLedgerIdentity:
    """The run ledger's normalized event set, pinned to a fixture at
    every worker count.

    Ledger events are sequenced live — completion order *does* move
    the raw stream — so the contract is on ``normalize_events``: sort
    by unit key, drop sequence/timestamps and the volatile attrs
    (wall times, pids, jobs, memo warmth), and serial and parallel
    runs of the same sweep must describe identical lifecycles.
    """

    def test_serial_normalized_ledger_matches_fixture(self,
                                                      update_golden):
        text = _smoke_sweep(jobs=1)[3]
        if update_golden:
            GOLDEN_DIR.mkdir(exist_ok=True)
            LEDGER_FIXTURE.write_text(text, encoding="utf-8")
            pytest.skip("ledger fixture regenerated; commit the diff")
        assert LEDGER_FIXTURE.exists(), (
            "missing ledger fixture — generate it with "
            "`python -m pytest tests/test_golden.py --update-golden`")
        assert text == LEDGER_FIXTURE.read_text(encoding="utf-8")

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_normalized_ledger_matches_fixture(self, jobs,
                                                        update_golden):
        if update_golden:
            pytest.skip("fixture regeneration runs serially")
        assert _smoke_sweep(jobs=jobs)[3] == \
            LEDGER_FIXTURE.read_text(encoding="utf-8")


def _faulted_replay_json() -> str:
    """Canonical JSON of a VEC replay under a seeded fault model."""
    from repro.faults import FaultModel
    from repro.kernels import get_app
    from repro.sim import clear_caches, simulate_app

    clear_caches()
    fault_model = FaultModel(mode="read-disturb", p_flip=1e-4, seed=2017)
    stats = simulate_app(get_app("VEC"), fault_model=fault_model)
    clear_caches()
    payload = {
        "app": stats.app_name,
        "counts": {
            f"{unit.name}/{variant}": counts.as_dict()
            for (unit, variant), counts in sorted(
                stats.counts.items(), key=lambda kv: (kv[0][0].name,
                                                      kv[0][1]))
        },
        "noc_toggles": {v: stats.noc_toggles[v]
                        for v in sorted(stats.noc_toggles)},
        "noc_bit_slots": stats.noc_bit_slots,
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "array_flips": fault_model.array_flips,
        "noc_flips": fault_model.noc_flips,
    }
    return canonical_json(payload)


class TestGoldenFaultedReplay:
    """A replay with an active fault model, pinned byte-for-byte.

    Faulted runs bypass every memoisation layer, so this fixture pins
    the whole fault path: the injector's RNG stream, read-disturb
    persistence write-backs, the damaged tallies and the flip counters.
    """

    def test_faulted_replay_matches_fixture(self, update_golden):
        text = _faulted_replay_json()
        if update_golden:
            GOLDEN_DIR.mkdir(exist_ok=True)
            FAULT_FIXTURE.write_text(text, encoding="utf-8")
            pytest.skip("fault fixture regenerated; commit the diff")
        assert FAULT_FIXTURE.exists(), (
            "missing fault fixture — generate it with "
            "`python -m pytest tests/test_golden.py --update-golden`")
        assert text == FAULT_FIXTURE.read_text(encoding="utf-8")

    def test_faulted_replay_is_rerun_deterministic(self):
        assert _faulted_replay_json() == _faulted_replay_json()


class TestHotspotReconciliation:
    """Hotspot self-times must telescope to the trace's root wall time
    at any worker count (the invariant ``repro bench hotspots`` leans
    on), and the structural aggregates must be jobs-invariant."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_self_time_totals_telescope_to_root_wall(self, jobs,
                                                     update_golden):
        if update_golden:
            pytest.skip("fixture regeneration runs serially")
        from repro.bench import aggregate_hotspots
        report = aggregate_hotspots(_smoke_sweep(jobs=jobs)[2])
        assert report.span_count > 0
        assert report.total_self_wall_s == \
            pytest.approx(report.root_wall_s, rel=1e-9, abs=1e-9)

    def test_structural_aggregates_match_across_jobs(self, update_golden):
        """Unit counts and instruction volumes are the same whether
        the trace was built serially or merged from 4 workers.

        Deeper structure (``replay``/``functional`` sub-spans) is
        legitimately warmth-dependent — memoised units skip them — so
        the jobs-invariant skeleton is: one ``unit`` span per planned
        unit, one ``simulate_app`` span per per-app unit, and the same
        total warp-instruction volume attributed to them."""
        if update_golden:
            pytest.skip("fixture regeneration runs serially")
        from repro.bench import aggregate_hotspots
        serial = aggregate_hotspots(_smoke_sweep(jobs=1)[2])
        merged = aggregate_hotspots(_smoke_sweep(jobs=4)[2])
        for name in ("unit", "simulate_app"):
            assert serial.hotspots[name].calls == \
                merged.hotspots[name].calls, name
            assert serial.hotspots[name].unclosed == 0, name
            assert merged.hotspots[name].unclosed == 0, name
        assert serial.hotspots["simulate_app"].instructions == \
            merged.hotspots["simulate_app"].instructions > 0


# ---------------------------------------------------------------------------
# Merge-order invariance (property test)
# ---------------------------------------------------------------------------

class _ToyApp:
    def __init__(self, name):
        self.name = name


_TOY_APPS = [_ToyApp(n) for n in ("ALP", "BET", "GAM", "DEL", "EPS")]


def _toy_record(app_name: str) -> dict:
    """A synthetic per-app unit record with app-dependent numbers."""
    value = float(sum(app_name.encode()) % 97) / 7.0
    payload = ExperimentResult(
        exp_id="fig09", title="toy slice", headers=["metric"],
        rows=[[round(value, 6)]],
        summary={"metric": value, "weight": value * 3.5},
    )
    return {"status": "ok", "attempts": 1, "wall_s": 0.0,
            "payload": payload.to_dict(), "error": None}


def _merge_in_order(order) -> str:
    # "fig09" stands in for any per-app experiment: _merge only needs
    # its registry entry to accept apps, the records are synthetic.
    runner = SweepRunner(experiments=["fig09"], apps=_TOY_APPS)
    for idx in order:
        app = _TOY_APPS[idx]
        runner.checkpoint.records[unit_key("fig09", app.name)] = \
            _toy_record(app.name)
    return canonical_json(runner._merge("fig09").to_dict())


_CANONICAL_MERGE = None


def _canonical_merge() -> str:
    global _CANONICAL_MERGE
    if _CANONICAL_MERGE is None:
        _CANONICAL_MERGE = _merge_in_order(range(len(_TOY_APPS)))
    return _CANONICAL_MERGE


class TestMergeOrderInvariance:
    @settings(max_examples=60, deadline=None)
    @given(st.permutations(list(range(len(_TOY_APPS)))))
    def test_merge_is_invariant_under_completion_order(self, order):
        """Shuffled record arrival (what a process pool produces) must
        merge to the same bytes — rows, float summary means, notes."""
        assert _merge_in_order(order) == _canonical_merge()

    def test_merge_row_order_is_sorted_by_app(self):
        merged = SweepRunner(experiments=["fig09"], apps=_TOY_APPS)
        for idx in (3, 0, 4, 2, 1):
            app = _TOY_APPS[idx]
            merged.checkpoint.records[unit_key("fig09", app.name)] = \
                _toy_record(app.name)
        result = merged._merge("fig09")
        assert [row[0] for row in result.rows] == \
            sorted(a.name for a in _TOY_APPS)


class TestPerUnitSeeding:
    def test_global_rng_paths_are_order_independent(self):
        """Two different unit execution orders leave a driver that uses
        the *global* RNGs with identical per-unit draws."""
        from repro.runner import seed_unit_rngs

        def draw(key):
            seed_unit_rngs(key)
            return (np.random.random(), random.random())

        keys = [unit_key("fig09", a.name) for a in _TOY_APPS]
        forward = {k: draw(k) for k in keys}
        backward = {k: draw(k) for k in reversed(keys)}
        assert forward == backward
        assert len({v for v in forward.values()}) == len(keys)

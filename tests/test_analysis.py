"""Tests for the analysis layer: profiling, ISA stats, tally parser."""

import numpy as np
import pytest

from repro.analysis import (AppStats, ISAProfile, LaneHammingProfile,
                            NarrowValueProfile, Profiler, profile_binaries)
from repro.arch.stats import AccessCounts, Encoders, Tally
from repro.core.spaces import Unit


class TestProfiler:
    def test_narrow_value_stats(self):
        prof = Profiler()
        vals = np.full(32, 5, dtype=np.uint32)       # clz 29
        prof.on_global_data(vals, np.ones(32, dtype=bool))
        assert prof.narrow.values == 32
        assert prof.narrow.mean_leading_zeros == 29.0

    def test_negative_values_inverted(self):
        prof = Profiler()
        vals = np.full(4, np.int64(-1) & 0xFFFFFFFF, dtype=np.uint32)
        prof.on_global_data(vals, None)
        assert prof.narrow.mean_leading_zeros == 32.0

    def test_zero_fraction(self):
        prof = Profiler()
        prof.on_global_data(np.zeros(8, dtype=np.uint32), None)
        assert prof.narrow.zero_fraction == 1.0
        assert prof.narrow.mean_zero_bits_per_word == 32.0

    def test_inactive_lanes_excluded(self):
        prof = Profiler()
        active = np.zeros(32, dtype=bool)
        prof.on_global_data(np.ones(32, dtype=np.uint32), active)
        assert prof.narrow.values == 0

    def test_lane_profile_identical_lanes(self):
        prof = Profiler(reg_sample_every=1)
        prof.on_reg_block(np.full(32, 9, dtype=np.uint32), None)
        assert prof.lanes.blocks == 1
        assert prof.lanes.mean_distances.sum() == 0

    def test_lane_profile_detects_outlier_lane(self):
        prof = Profiler(reg_sample_every=1)
        block = np.zeros(32, dtype=np.uint32)
        block[0] = 0xFFFFFFFF
        for _ in range(4):
            prof.on_reg_block(block, None)
        assert prof.lanes.mean_distances[0] > prof.lanes.mean_distances[5]
        assert prof.lanes.optimal_lane != 0

    def test_sampling_period(self):
        prof = Profiler(reg_sample_every=4)
        for _ in range(8):
            prof.on_reg_block(np.zeros(32, dtype=np.uint32), None)
        assert prof.lanes.blocks == 2

    def test_sampling_validation(self):
        with pytest.raises(ValueError):
            Profiler(reg_sample_every=0)

    def test_pivot_excess_at_least_one(self):
        prof = Profiler(reg_sample_every=1)
        rng = np.random.default_rng(3)
        for _ in range(8):
            prof.on_reg_block(
                rng.integers(0, 2**32, 32, dtype=np.uint32), None)
        assert prof.lanes.pivot_excess(21) >= 1.0

    def test_normalized_curve_starts_at_one(self):
        prof = Profiler(reg_sample_every=1)
        rng = np.random.default_rng(3)
        prof.on_reg_block(rng.integers(0, 2**32, 32, dtype=np.uint32), None)
        assert prof.lanes.normalized()[0] == pytest.approx(1.0)


class TestISAProfile:
    def test_profile_counts_and_mask(self):
        binaries = {
            "a": np.array([0xF000000000000000] * 3, dtype=np.uint64),
            "b": np.array([0x0000000000000001], dtype=np.uint64),
        }
        profile = profile_binaries(binaries)
        assert profile.instruction_count == 4
        assert profile.mask == 0xF000000000000000
        assert profile.positions_preferring_zero == 60

    def test_encoded_fraction_improves(self):
        rng = np.random.default_rng(0)
        corpus = (rng.integers(0, 1 << 12, 500).astype(np.uint64))
        profile = profile_binaries({"x": corpus})
        assert profile.encoded_one_fraction(corpus) > \
            profile.baseline_one_fraction(corpus)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            profile_binaries({})

    def test_empty_binary_fractions(self):
        profile = profile_binaries({"x": np.array([1], dtype=np.uint64)})
        empty = np.array([], dtype=np.uint64)
        assert profile.encoded_one_fraction(empty) == 0.0


class TestTallyAndEncoders:
    def test_access_counts_accumulate(self):
        c = AccessCounts()
        c.add(False, 10, 22)
        c.add(True, 5, 27)
        assert (c.read0, c.read1, c.write0, c.write1) == (10, 22, 5, 27)
        assert c.total_bits == 64
        assert c.one_fraction == pytest.approx(49 / 64)

    def test_tally_merge(self):
        a, b = Tally(), Tally()
        a.add(Unit.REG, "base", False, 1, 2)
        b.add(Unit.REG, "base", False, 3, 4)
        b.add(Unit.L2, "ALL", True, 5, 6)
        a.merge(b)
        assert a.get(Unit.REG, "base").read1 == 6
        assert a.get(Unit.L2, "ALL").write0 == 5

    def test_encoders_variant_consistency(self):
        enc = Encoders(isa_mask=0x00FF)
        words = np.arange(32, dtype=np.uint32)
        variants = enc.data_variants(Unit.REG, words, "warp")
        assert set(variants) == {"base", "NV", "VS", "ISA", "ALL"}
        assert np.array_equal(variants["ISA"], variants["base"])

    def test_sme_vs_is_base(self):
        enc = Encoders(isa_mask=0)
        words = np.arange(32, dtype=np.uint32)
        variants = enc.data_variants(Unit.SME, words, "warp")
        assert np.array_equal(variants["VS"], variants["base"])
        assert np.array_equal(variants["ALL"], variants["NV"])

    def test_tally_data_counts_active_only(self):
        enc = Encoders(isa_mask=0)
        tally = Tally()
        active = np.zeros(32, dtype=bool)
        active[:4] = True
        enc.tally_data(tally, Unit.REG, np.zeros(32, dtype=np.uint32),
                       is_store=True, blocked="warp", active=active)
        assert tally.get(Unit.REG, "base").total_bits == 4 * 32

    def test_tally_inst(self):
        # An all-zero mask XNORs an all-zero word to all ones.
        enc = Encoders(isa_mask=0)
        tally = Tally()
        enc.tally_inst(tally, Unit.IFB,
                       np.array([0], dtype=np.uint64), is_store=False)
        assert tally.get(Unit.IFB, "base").read1 == 0
        assert tally.get(Unit.IFB, "ISA").read1 == 64


class TestAppStats:
    def _stats(self, **kw):
        defaults = dict(app_name="x", cycles=700, used_sms=2,
                        freq_mhz=700, instructions=1120)
        defaults.update(kw)
        return AppStats(**defaults)

    def test_runtime(self):
        s = self._stats()
        assert s.runtime_s == pytest.approx(1e-6)

    def test_active_runtime_uses_ipc(self):
        s = self._stats()
        expected = 1120 / 2 / AppStats.TARGET_IPC / 700e6
        assert s.active_runtime_s == pytest.approx(expected)

    def test_footprint_default(self):
        assert self._stats().footprint(Unit.REG) == 1.0

    def test_noc_rate_empty(self):
        assert self._stats().noc_toggle_rate("base") == 0.0

    def test_memory_intensity(self):
        s = self._stats(dram_accesses=10,
                        lane_ops_by_class={"alu": 1000})
        assert s.memory_intensity() == pytest.approx(10.0)

"""Unit and property tests for repro.core.bitutils."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import bitutils as bu

u32s = st.integers(min_value=0, max_value=0xFFFFFFFF)
u64s = st.integers(min_value=0, max_value=0xFFFFFFFFFFFFFFFF)


class TestPopcount:
    def test_zero(self):
        assert bu.popcount32(np.uint32(0)) == 0

    def test_all_ones(self):
        assert bu.popcount32(np.uint32(0xFFFFFFFF)) == 32

    def test_single_bits(self):
        for b in range(32):
            assert bu.popcount32(np.uint32(1 << b)) == 1

    def test_array(self):
        arr = np.array([0, 1, 3, 7, 0xFFFFFFFF], dtype=np.uint32)
        assert bu.popcount32(arr).tolist() == [0, 1, 2, 3, 32]

    def test_popcount64_all_ones(self):
        assert bu.popcount64(np.uint64(0xFFFFFFFFFFFFFFFF)) == 64

    def test_popcount64_single_bits(self):
        for b in (0, 15, 16, 31, 32, 47, 48, 63):
            assert bu.popcount64(np.uint64(1 << b)) == 1

    @given(u32s)
    def test_matches_python_bin(self, v):
        assert int(bu.popcount32(np.uint32(v))) == bin(v).count("1")

    @given(u64s)
    def test_popcount64_matches_python(self, v):
        assert int(bu.popcount64(np.uint64(v))) == bin(v).count("1")


class TestHamming:
    def test_weight_total(self):
        arr = np.array([0xF, 0xF0], dtype=np.uint32)
        assert bu.hamming_weight(arr) == 8

    def test_weight_64(self):
        arr = np.array([0xFF00FF00FF00FF00], dtype=np.uint64)
        assert bu.hamming_weight(arr, bits=64) == 32

    def test_weight_bad_width(self):
        with pytest.raises(ValueError):
            bu.hamming_weight(np.array([1], dtype=np.uint32), bits=16)

    def test_distance_self_is_zero(self):
        arr = np.arange(16, dtype=np.uint32)
        assert bu.hamming_distance(arr, arr).sum() == 0

    def test_distance_complement_is_32(self):
        a = np.array([0x12345678], dtype=np.uint32)
        assert bu.hamming_distance(a, ~a)[0] == 32

    @given(u32s, u32s)
    def test_distance_symmetry(self, a, b):
        d1 = bu.hamming_distance(np.uint32(a), np.uint32(b))
        d2 = bu.hamming_distance(np.uint32(b), np.uint32(a))
        assert int(d1) == int(d2)

    @given(u32s, u32s, u32s)
    def test_triangle_inequality(self, a, b, c):
        dab = int(bu.hamming_distance(np.uint32(a), np.uint32(b)))
        dbc = int(bu.hamming_distance(np.uint32(b), np.uint32(c)))
        dac = int(bu.hamming_distance(np.uint32(a), np.uint32(c)))
        assert dac <= dab + dbc


class TestCountBits:
    def test_zeros_plus_ones_is_total(self):
        arr = np.array([5, 9, 0xFFFF], dtype=np.uint32)
        zeros, ones = bu.count_bits(arr)
        assert zeros + ones == arr.size * 32

    def test_empty(self):
        zeros, ones = bu.count_bits(np.array([], dtype=np.uint32))
        assert zeros == 0 and ones == 0


class TestLeadingZeros:
    def test_zero_word(self):
        assert bu.leading_zeros32(np.uint32(0)) == 32

    def test_msb_set(self):
        assert bu.leading_zeros32(np.uint32(0x80000000)) == 0

    def test_one(self):
        assert bu.leading_zeros32(np.uint32(1)) == 31

    @given(st.integers(min_value=0, max_value=31))
    def test_single_bit_positions(self, b):
        assert int(bu.leading_zeros32(np.uint32(1 << b))) == 31 - b

    def test_signed_inverts_negatives(self):
        # -1 is all ones -> inverted to 0 -> clz 32.
        neg1 = np.uint32(0xFFFFFFFF)
        assert bu.signed_leading_zeros32(neg1) == 32

    def test_signed_small_negative(self):
        # -2 = ...11110 -> inverted -> 1 -> 31 leading zeros.
        neg2 = np.int32(-2).view(np.uint32) if hasattr(np.int32(-2), 'view') \
            else np.uint32(np.int64(-2) & 0xFFFFFFFF)
        val = np.uint32(np.int64(-2) & 0xFFFFFFFF)
        assert bu.signed_leading_zeros32(val) == 31

    def test_signed_positive_passthrough(self):
        assert bu.signed_leading_zeros32(np.uint32(0x0000FFFF)) == 16


class TestBitPlanes:
    def test_msb_convention(self):
        counts = bu.bit_plane_counts(np.array([0x80000000], dtype=np.uint32))
        assert counts[0] == 1 and counts[1:].sum() == 0

    def test_lsb(self):
        counts = bu.bit_plane_counts(np.array([1, 1, 1], dtype=np.uint32))
        assert counts[31] == 3

    def test_sum_equals_weight(self):
        arr = np.array([0x12345678, 0xDEADBEEF], dtype=np.uint32)
        assert bu.bit_plane_counts(arr).sum() == bu.hamming_weight(arr)

    def test_64bit(self):
        counts = bu.bit_plane_counts(
            np.array([1 << 63], dtype=np.uint64), bits=64)
        assert counts[0] == 1


class TestByteConversions:
    def test_roundtrip(self):
        words = np.array([0x11223344, 0xAABBCCDD], dtype=np.uint32)
        assert np.array_equal(bu.bytes_to_words(bu.words_to_bytes(words)),
                              words)

    def test_little_endian(self):
        b = bu.words_to_bytes(np.array([0x11223344], dtype=np.uint32))
        assert b.tolist() == [0x44, 0x33, 0x22, 0x11]

    def test_bad_length(self):
        with pytest.raises(ValueError):
            bu.bytes_to_words(np.zeros(3, dtype=np.uint8))

    @given(st.lists(u32s, min_size=1, max_size=16))
    def test_roundtrip_property(self, vals):
        words = np.array(vals, dtype=np.uint32)
        assert np.array_equal(bu.bytes_to_words(bu.words_to_bytes(words)),
                              words)


class TestFlits:
    def test_pack_exact(self):
        flits = bu.pack_flits(np.arange(64, dtype=np.uint8), 32)
        assert flits.shape == (2, 32)

    def test_pack_pads_tail(self):
        flits = bu.pack_flits(np.ones(40, dtype=np.uint8), 32)
        assert flits.shape == (2, 32)
        assert flits[1, 8:].sum() == 0

    def test_pack_empty_gives_one_flit(self):
        assert bu.pack_flits(np.array([], dtype=np.uint8), 32).shape == (1, 32)

    def test_toggles_identical(self):
        f = np.arange(32, dtype=np.uint8)
        assert bu.toggles_between(f, f) == 0

    def test_toggles_complement(self):
        f = np.zeros(32, dtype=np.uint8)
        assert bu.toggles_between(f, ~f) == 256

    @given(st.lists(st.integers(0, 255), min_size=4, max_size=4),
           st.lists(st.integers(0, 255), min_size=4, max_size=4))
    def test_toggles_symmetric(self, a, b):
        fa = np.array(a, dtype=np.uint8)
        fb = np.array(b, dtype=np.uint8)
        assert bu.toggles_between(fa, fb) == bu.toggles_between(fb, fa)


class TestFloatBits:
    def test_one(self):
        assert bu.float_to_bits(np.float32(1.0)) == 0x3F800000

    def test_roundtrip(self):
        vals = np.array([0.0, 1.5, -2.25, 1e10], dtype=np.float32)
        assert np.array_equal(bu.bits_to_float(bu.float_to_bits(vals)), vals)

"""Functional-correctness checks: kernels compute the right values.

The bit statistics are only meaningful if the simulated kernels really
perform their computation, so for a representative kernel per pattern
(streaming, reduction, stencil, gemv, scan, sort, graph, hashing) we
re-run the functional phase and compare the device buffers against a
NumPy reference.
"""

import numpy as np
import pytest

from repro.arch import Encoders, GlobalMemory, run_functional
from repro.core.bitutils import bits_to_float
from repro.kernels import get_app


def run_app_functional(name):
    """Build and functionally execute one app on a fresh memory."""
    app = get_app(name)
    mem = GlobalMemory(size_bytes=app.memory_bytes)
    rng = np.random.default_rng(app.seed)
    launches = app.build(mem, rng)
    run_functional(app.name, mem, launches, Encoders(isa_mask=0))
    return mem


def floats(mem, name):
    return bits_to_float(mem.to_numpy(mem.buffers[name]))


class TestStreamingKernels:
    def test_vectoradd(self):
        mem = run_app_functional("VEC")
        a = floats(mem, "A")
        b = floats(mem, "B")
        c = floats(mem, "C")
        np.testing.assert_allclose(c, a + b, rtol=1e-6)

    def test_triad(self):
        mem = run_app_functional("TRD")
        b = floats(mem, "B")
        c = floats(mem, "C")
        a = floats(mem, "A")
        np.testing.assert_allclose(a, b + np.float32(1.75) * c, rtol=1e-5)


class TestLinearAlgebraKernels:
    def test_gesummv(self):
        mem = run_app_functional("GES")
        n, k = 512, 24
        A = floats(mem, "A").reshape(n, k).astype(np.float64)
        B = floats(mem, "B").reshape(n, k).astype(np.float64)
        x = floats(mem, "x").astype(np.float64)
        y = floats(mem, "y")
        expected = 1.5 * (A @ x) + 1.2 * (B @ x)
        np.testing.assert_allclose(y, expected.astype(np.float32),
                                   rtol=1e-3)

    def test_sgemm_rowdot(self):
        mem = run_app_functional("SGE")
        k, cols = 32, 32
        A = floats(mem, "A").reshape(-1, k).astype(np.float64)
        B = floats(mem, "B").reshape(k, cols).astype(np.float64)
        C = floats(mem, "C").reshape(-1, cols)
        np.testing.assert_allclose(C, (A @ B).astype(np.float32),
                                   rtol=1e-3)


class TestSharedMemoryKernels:
    def test_reduction_block_sums(self):
        mem = run_app_functional("RED")
        data = floats(mem, "input")
        partials = floats(mem, "partials")
        per_block = data.reshape(2, -1).astype(np.float64).sum(axis=1)
        np.testing.assert_allclose(partials, per_block.astype(np.float32),
                                   rtol=1e-4)

    def test_scan_prefix_sums(self):
        mem = run_app_functional("SCN")
        data = mem.to_numpy(mem.buffers["input"]).astype(np.int64)
        scanned = mem.to_numpy(mem.buffers["scanned"]).astype(np.int64)
        block = data.reshape(2, -1)
        expected = np.cumsum(block, axis=1).ravel()
        assert np.array_equal(scanned, expected)


class TestIntegerKernels:
    def test_sort_stages_preserve_multiset(self):
        app = get_app("SRT")
        mem = GlobalMemory(size_bytes=app.memory_bytes)
        rng = np.random.default_rng(app.seed)
        launches = app.build(mem, rng)
        before = np.sort(mem.to_numpy(mem.buffers["keys"]).copy())
        run_functional("SRT", mem, launches, Encoders(isa_mask=0))
        after = np.sort(mem.to_numpy(mem.buffers["keys"]))
        assert np.array_equal(before, after)

    def test_storegpu_hash_deterministic(self):
        mem_a = run_app_functional("STO")
        mem_b = run_app_functional("STO")
        assert np.array_equal(mem_a.to_numpy(mem_a.buffers["hashes"]),
                              mem_b.to_numpy(mem_b.buffers["hashes"]))

    def test_nw_scores_bounded(self):
        mem = run_app_functional("NW")
        scores = mem.to_numpy(mem.buffers["score"]).view(np.int32)
        # Two DP rounds move each score by at most +-4 per round.
        assert np.abs(scores.astype(np.int64)).max() < 64


class TestGraphKernels:
    def test_bfs_costs_monotone(self):
        """BFS never raises a settled cost and only writes cost+1."""
        app = get_app("BFS")
        mem = GlobalMemory(size_bytes=app.memory_bytes)
        rng = np.random.default_rng(app.seed)
        launches = app.build(mem, rng)
        before = mem.to_numpy(mem.buffers["cost"]).copy()
        run_functional("BFS", mem, launches, Encoders(isa_mask=0))
        after = mem.to_numpy(mem.buffers["cost"])
        assert (after <= before).all()
        changed = after[after != before]
        assert changed.size > 0            # the frontier expanded
        # Updates can chain within a launch (warps run sequentially in
        # phase 1, like a chaotic relaxation), but every written cost
        # is a finite hop count, never the 0xFFFF sentinel.
        assert changed.min() >= 1
        assert changed.max() < 0xFFFF

    def test_sssp_relaxation_never_increases(self):
        app = get_app("SSP")
        mem = GlobalMemory(size_bytes=app.memory_bytes)
        rng = np.random.default_rng(app.seed)
        launches = app.build(mem, rng)
        before = mem.to_numpy(mem.buffers["dist"]).copy()
        run_functional("SSP", mem, launches, Encoders(isa_mask=0))
        after = mem.to_numpy(mem.buffers["dist"])
        assert (after <= before).all()


class TestStencilKernels:
    def test_laplace_interior_average(self):
        mem = run_app_functional("LPS")
        nx, ny, nz = 32, 12, 8
        grid = floats(mem, "grid").reshape(nz, ny, nx).astype(np.float64)
        out = floats(mem, "out").reshape(nz, ny, nx)
        # Check one interior point written by thread gid: x=5, y=1, z=1.
        x, y, z = 5, 1, 1
        expected = (grid[z, y, x - 1] + grid[z, y, x + 1]
                    + grid[z, y - 1, x] + grid[z, y + 1, x]
                    + grid[z - 1, y, x] + grid[z + 1, y, x]) / 6.0
        assert out[z, y, x] == pytest.approx(expected, rel=1e-5)

    def test_kmeans_assignment_is_argmin(self):
        mem = run_app_functional("KMN")
        dims, k = 4, 8
        pts = floats(mem, "points").reshape(-1, dims).astype(np.float64)
        cent = floats(mem, "centroids").reshape(k, dims).astype(np.float64)
        assign = mem.to_numpy(mem.buffers["assign"])
        dists = ((pts[:, None, :] - cent[None, :, :]) ** 2).sum(axis=2)
        expected = dists.argmin(axis=1)
        # Float-order ties aside, the overwhelming majority must match.
        agreement = (assign == expected).mean()
        assert agreement > 0.99

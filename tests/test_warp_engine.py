"""Tests for the SIMT warp context and the functional engine."""

import numpy as np
import pytest

from repro.arch import (BARRIER, Encoders, GlobalMemory, Launch, Tally,
                        run_functional)
from repro.core.spaces import Unit
from repro.arch.trace import MemSpace
from repro.core.bitutils import bits_to_float


def run_one(body, n_blocks=1, warps_per_block=1, shared_bytes=0,
            mem=None, name="k"):
    mem = mem or GlobalMemory(size_bytes=1 << 20)
    enc = Encoders(isa_mask=0)
    result = run_functional("test", mem,
                            [Launch(name, body, n_blocks, warps_per_block,
                                    shared_bytes)], enc)
    return mem, result


class TestArithmetic:
    def test_iadd(self):
        out = {}

        def body(w):
            out["r"] = w.iadd(w.const(5), w.const(7))
        run_one(body)
        assert (out["r"].values == 12).all()

    def test_integer_wraparound(self):
        out = {}

        def body(w):
            out["r"] = w.iadd(w.const(0xFFFFFFFF), w.const(1))
        run_one(body)
        assert (out["r"].values == 0).all()

    def test_negative_scalar_operand(self):
        out = {}

        def body(w):
            out["r"] = w.iadd(w.const(10), -3)
        run_one(body)
        assert (out["r"].values == 7).all()

    def test_float_ops(self):
        out = {}

        def body(w):
            a = w.fconst(1.5)
            out["r"] = w.ffma(a, w.fconst(2.0), w.fconst(0.25))
        run_one(body)
        assert bits_to_float(out["r"].values)[0] == pytest.approx(3.25)

    def test_frcp_of_zero_does_not_crash(self):
        def body(w):
            w.frcp(w.fconst(0.0))
        run_one(body)

    def test_shift_ops(self):
        out = {}

        def body(w):
            out["l"] = w.shl(w.const(1), 4)
            out["r"] = w.shr(w.const(256), 4)
        run_one(body)
        assert (out["l"].values == 16).all()
        assert (out["r"].values == 16).all()

    def test_clz_matches_bitutils(self):
        out = {}

        def body(w):
            out["r"] = w.clz(w.const(1))
        run_one(body)
        assert (out["r"].values == 31).all()

    def test_signed_min_max(self):
        out = {}

        def body(w):
            out["min"] = w.imin(w.const(-5 & 0xFFFFFFFF), w.const(3))
            out["max"] = w.imax(w.const(-5 & 0xFFFFFFFF), w.const(3))
        run_one(body)
        assert out["min"].values.view(np.int32)[0] == -5
        assert (out["max"].values == 3).all()

    def test_lane_id_values(self):
        out = {}

        def body(w):
            out["lane"] = w.lane_id()
        run_one(body)
        assert out["lane"].values.tolist() == list(range(32))

    def test_global_thread_idx(self):
        seen = []

        def body(w):
            seen.append(int(w.global_thread_idx().values[0]))
        run_one(body, n_blocks=2, warps_per_block=2)
        assert seen == [0, 32, 64, 96]


class TestDivergence:
    def test_masked_store(self):
        mem = GlobalMemory(size_bytes=1 << 20)
        buf = mem.alloc(32 * 4, "out")

        def body(w):
            lane = w.lane_id()
            addr = w.iadd(w.imul(lane, 4), buf.base)
            pred = w.setp_lt(lane, w.const(16))
            with w.diverge(pred):
                w.st_global(addr, w.const(1))
        run_one(body, mem=mem)
        vals = mem.to_numpy(buf)
        assert vals[:16].tolist() == [1] * 16
        assert vals[16:].sum() == 0

    def test_select_merges_branches(self):
        out = {}

        def body(w):
            lane = w.lane_id()
            pred = w.setp_lt(lane, w.const(8))
            with w.diverge(pred):
                doubled = w.imul(lane, 2)
            out["r"] = w.select(pred, doubled, lane)
        run_one(body)
        vals = out["r"].values
        assert vals[:8].tolist() == [x * 2 for x in range(8)]
        assert vals[8:].tolist() == list(range(8, 32))

    def test_nested_divergence(self):
        out = {}

        def body(w):
            lane = w.lane_id()
            outer = w.setp_lt(lane, w.const(16))
            with w.diverge(outer):
                inner = w.setp_lt(lane, w.const(8))
                with w.diverge(inner):
                    out["inner_mask"] = w.active.copy()
                out["outer_mask"] = w.active.copy()
        run_one(body)
        assert out["inner_mask"].sum() == 8
        assert out["outer_mask"].sum() == 16

    def test_any_active(self):
        flags = {}

        def body(w):
            lane = w.lane_id()
            with w.diverge(w.setp_lt(lane, w.const(4))):
                flags["inner"] = w.any_active(
                    np.arange(32) < 2)
        run_one(body)
        assert flags["inner"]


class TestMemoryOps:
    def test_load_store_roundtrip(self):
        mem = GlobalMemory(size_bytes=1 << 20)
        src = mem.alloc_array(np.arange(32, dtype=np.uint32), "src")
        dst = mem.alloc(32 * 4, "dst")

        def body(w):
            addr = w.iadd(w.imul(w.lane_id(), 4), src.base)
            v = w.ld_global(addr)
            w.st_global(w.iadd(w.imul(w.lane_id(), 4), dst.base), v)
        run_one(body, mem=mem)
        assert np.array_equal(mem.to_numpy(dst), np.arange(32))

    def test_shared_memory_roundtrip(self):
        out = {}

        def body(w):
            off = w.imul(w.lane_id(), 4)
            w.st_shared(off, w.lane_id())
            yield w.barrier()
            swapped = w.imul(w.ixor(w.lane_id(), w.const(1)), 4)
            out["r"] = w.ld_shared(swapped)
        run_one(body, shared_bytes=32 * 4)
        vals = out["r"].values
        assert vals[0] == 1 and vals[1] == 0

    def test_store_records_data_in_trace(self):
        mem = GlobalMemory(size_bytes=1 << 20)
        dst = mem.alloc(32 * 4, "dst")

        def body(w):
            w.st_global(w.iadd(w.imul(w.lane_id(), 4), dst.base),
                        w.const(0xAB))
        mem, result = run_one(body, mem=mem)
        stores = [r.mem for b in result.trace.launches[0].blocks
                  for wt in b.warps for r in wt.records
                  if r.mem and r.mem.is_store]
        assert len(stores) == 1
        assert (stores[0].data == 0xAB).all()
        assert stores[0].space is MemSpace.GLOBAL

    def test_const_and_tex_spaces(self):
        mem = GlobalMemory(size_bytes=1 << 20)
        buf = mem.alloc_array(np.arange(32, dtype=np.uint32), "c")

        def body(w):
            addr = w.iadd(w.imul(w.lane_id(), 4), buf.base)
            w.ld_const(addr)
            w.ld_tex(addr)
        mem, result = run_one(body, mem=mem)
        spaces = [r.mem.space for b in result.trace.launches[0].blocks
                  for wt in b.warps for r in wt.records if r.mem]
        assert spaces == [MemSpace.CONST, MemSpace.TEX]


class TestStaticProgram:
    def test_loop_reuses_pc(self):
        def body(w):
            acc = w.const(0)
            for _ in range(10):
                acc = w.iadd(acc, 1)
        mem, result = run_one(body)
        launch = result.trace.launches[0]
        # 1 const + 1 static iadd site, 11 dynamic records.
        assert len(launch.static_words) == 2
        assert launch.dynamic_instructions == 11

    def test_warps_share_static_binary(self):
        def body(w):
            w.iadd(w.const(1), 2)
        mem, result = run_one(body, n_blocks=2, warps_per_block=4)
        assert len(result.trace.launches[0].static_words) == 2

    def test_binary_patched_into_memory(self):
        def body(w):
            w.iadd(w.const(1), 2)
        mem, result = run_one(body)
        launch = result.trace.launches[0]
        stored = mem.read_u64(launch.code_base)
        assert stored == launch.static_words[0]

    def test_static_binary_concatenation(self):
        def body(w):
            w.const(3)
        mem, result = run_one(body)
        assert result.trace.static_binary.dtype == np.uint64


class TestBarriers:
    def test_barrier_synchronises_rounds(self):
        order = []

        def body(w):
            order.append(("pre", w.warp_in_block))
            yield w.barrier()
            order.append(("post", w.warp_in_block))
        run_one(body, warps_per_block=3)
        phases = [p for p, _ in order]
        assert phases == ["pre"] * 3 + ["post"] * 3

    def test_barrier_records_in_trace(self):
        def body(w):
            yield w.barrier()
        mem, result = run_one(body)
        records = result.trace.launches[0].blocks[0].warps[0].records
        assert any(r.is_barrier for r in records)

    def test_invalid_yield_rejected(self):
        def body(w):
            yield "not-a-barrier"
        with pytest.raises(RuntimeError, match="non-barrier"):
            run_one(body)


class TestRegTally:
    def test_register_traffic_counted(self):
        def body(w):
            w.iadd(w.const(1), w.const(2))
        mem, result = run_one(body)
        counts = result.tally.get(Unit.REG, "base")
        assert counts.write0 + counts.write1 == 3 * 32 * 32
        assert counts.read0 + counts.read1 == 2 * 32 * 32

    def test_all_variant_has_more_ones(self):
        def body(w):
            w.iadd(w.const(1), w.const(2))   # narrow values
        mem, result = run_one(body)
        base = result.tally.get(Unit.REG, "base")
        enc = result.tally.get(Unit.REG, "ALL")
        assert enc.one_fraction > base.one_fraction

    def test_sme_tally_nv_only(self):
        def body(w):
            w.st_shared(w.imul(w.lane_id(), 4), w.const(2))
        mem, result = run_one(body, shared_bytes=128)
        base = result.tally.get(Unit.SME, "base")
        nv = result.tally.get(Unit.SME, "NV")
        vs = result.tally.get(Unit.SME, "VS")
        assert nv.one_fraction > base.one_fraction
        assert vs.write1 == base.write1      # VS space excludes SME

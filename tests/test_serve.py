"""Tests for ``repro obs serve``: the run index, the ledger fan-out
hub, and the HTTP/SSE service itself.

The acceptance pin of this layer lives here: two concurrent SSE
clients tailing one live ledger, one of them disconnecting mid-stream
and resuming via ``Last-Event-ID`` while the writer rotates the sink —
every event delivered to both, exactly once, no duplicates and no
gaps. Plus the byte-identity contract: the ``/metrics`` body equals
``repro obs report --metrics SNAP --prometheus`` output exactly.
"""

import http.client
import json
import os
import threading

import pytest

from repro.obs.ledger import (LedgerHub, RunLedger, ledger_segments,
                              read_ledger)
from repro.obs.runindex import RunIndex, classify_artifact, run_id_for
from repro.obs.serve import (ObsHTTPServer, PROMETHEUS_CONTENT_TYPE,
                             SSE_CONTENT_TYPE, serve)

SMOKE_EXPERIMENTS = ["fig09"]
SMOKE_APPS = ("ATA", "VEC")


def _smoke_artifacts(tmp_path, run_id="smoke"):
    """Run the golden-smoke sweep with all three artifact sinks named
    so they catalog under one run id; returns the directory."""
    from repro.kernels import get_app
    from repro.runner import SweepRunner
    SweepRunner(experiments=SMOKE_EXPERIMENTS,
                apps=[get_app(name) for name in SMOKE_APPS],
                ledger_path=str(tmp_path / f"{run_id}.jsonl"),
                trace_path=str(tmp_path / f"{run_id}.trace.jsonl"),
                metrics_path=str(tmp_path / f"{run_id}.metrics.json")
                ).run()
    return str(tmp_path)


class _Server:
    """In-process ObsHTTPServer on an ephemeral port."""

    def __init__(self, directory, **kwargs):
        kwargs.setdefault("poll_interval_s", 0.01)
        kwargs.setdefault("heartbeat_s", 0.2)
        self.server = ObsHTTPServer(("127.0.0.1", 0), directory, **kwargs)
        self.port = self.server.server_address[1]
        self._thread = threading.Thread(target=self.server.serve_forever,
                                        kwargs={"poll_interval": 0.05},
                                        daemon=True)
        self._thread.start()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.server.shutdown()
        self._thread.join(timeout=5)
        self.server.server_close()

    # -- client helpers --------------------------------------------------

    def get(self, path, headers=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=10)
        conn.request("GET", path, headers=headers or {})
        resp = conn.getresponse()
        body = resp.read()
        conn.close()
        return resp.status, resp.getheader("Content-Type"), body

    def get_json(self, path):
        status, ctype, body = self.get(path)
        assert ctype.startswith("application/json")
        return status, json.loads(body.decode("utf-8"))

    def sse_connect(self, path, last_event_id=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=10)
        headers = {}
        if last_event_id is not None:
            headers["Last-Event-ID"] = str(last_event_id)
        conn.request("GET", path, headers=headers)
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.getheader("Content-Type") == SSE_CONTENT_TYPE
        return conn, resp


def _read_frames(resp, limit=None):
    """Parse SSE frames off a response until the stream closes (or
    ``limit`` data frames arrived). Heartbeat comments are skipped;
    the ``retry:`` prelude never forms a data frame."""
    frames, current = [], {}
    while True:
        raw = resp.readline()
        if not raw:
            break                          # server closed the stream
        line = raw.decode("utf-8").rstrip("\n")
        if not line:
            if "data" in current:
                frames.append(current)
                if limit is not None and len(frames) >= limit:
                    break
            current = {}
            continue
        if line.startswith(":"):
            continue                       # keep-alive comment
        field, _, value = line.partition(":")
        current[field] = value.lstrip()
    return frames


def _ids(frames):
    return [int(frame["id"]) for frame in frames]


# ---------------------------------------------------------------------------
# Run index
# ---------------------------------------------------------------------------

class TestRunIndex:
    def test_run_id_strips_qualifiers(self):
        assert run_id_for("/x/inject.jsonl") == "inject"
        assert run_id_for("inject.trace.jsonl") == "inject"
        assert run_id_for("inject.metrics.json") == "inject"
        assert run_id_for("inject.ledger.jsonl") == "inject"
        assert run_id_for("noext") == "noext"

    def test_classify_by_content_not_name(self, tmp_path):
        ledger = tmp_path / "weird-name.jsonl"
        ledger.write_text('{"seq": 1, "ts": 0, "type": "ledger_open", '
                          '"key": null, "attrs": {}}\n')
        trace = tmp_path / "t.jsonl"
        trace.write_text('{"type": "span", "name": "root", "depth": 0, '
                         '"wall_s": 1.0}\n')
        metrics = tmp_path / "m.json"
        metrics.write_text('{"families": {}}')
        bench = tmp_path / "BENCH_X.json"
        bench.write_text('{"schema": "repro-bench", "scenarios": {}}')
        junk = tmp_path / "junk.json"
        junk.write_text('{"neither": true}')
        torn = tmp_path / "torn.jsonl"
        torn.write_text('{"seq": 1, "ty')
        assert classify_artifact(str(ledger)) == "ledger"
        assert classify_artifact(str(trace)) == "trace"
        assert classify_artifact(str(metrics)) == "metrics"
        assert classify_artifact(str(bench)) == "bench"
        assert classify_artifact(str(junk)) is None
        assert classify_artifact(str(torn)) is None
        assert classify_artifact(str(tmp_path / "absent.jsonl")) is None

    def test_groups_artifact_trio_into_one_run(self, tmp_path):
        directory = _smoke_artifacts(tmp_path)
        index = RunIndex(directory)
        assert list(index.runs) == ["smoke"]
        entry = index.get("smoke")
        assert entry.ledger and entry.trace and entry.metrics
        assert entry.status == "ok"
        assert entry.last_seq == read_ledger(entry.ledger.path)[-1]["seq"]
        assert entry.meta.get("experiments") == SMOKE_EXPERIMENTS
        assert entry.created_ts is not None

    def test_unfinished_ledger_reads_running(self, tmp_path):
        ledger = RunLedger(path=str(tmp_path / "live.jsonl"))
        ledger.emit("sweep_begin", jobs=1)
        index = RunIndex(str(tmp_path))
        assert index.get("live").status == "running"
        ledger.emit("sweep_end", status="ok")
        ledger.close()
        assert index.refresh().get("live").status == "ok"

    def test_latest_run_honors_artifact_requirement(self, tmp_path):
        directory = _smoke_artifacts(tmp_path)
        orphan = RunLedger(path=os.path.join(directory, "zz.jsonl"))
        orphan.emit("sweep_end", status="ok")
        orphan.close()
        now = os.path.getmtime(os.path.join(directory, "smoke.jsonl"))
        os.utime(os.path.join(directory, "zz.jsonl"), (now + 60, now + 60))
        index = RunIndex(directory)
        assert index.latest_run().run_id == "zz"          # newest overall
        assert index.latest_run(require="metrics").run_id == "smoke"
        assert index.latest_run(require="trace").run_id == "smoke"

    def test_records_catalogued_newest_first(self, tmp_path):
        for stamp in ("20260101T000000Z", "20260202T000000Z"):
            (tmp_path / f"BENCH_{stamp}.json").write_text(json.dumps(
                {"schema": "repro-bench", "created_utc": stamp,
                 "scenarios": {"a": {}, "b": {}}}))
        (tmp_path / "FIDELITY_X.json").write_text(json.dumps(
            {"schema": "repro-fidelity", "created_utc": "2026",
             "claims": {"c": {}}}))
        index = RunIndex(str(tmp_path))
        assert [r.kind for r in index.records].count("bench") == 2
        assert index.records[0].record_id == "BENCH_20260202T000000Z"
        assert index.records[0].entries == 2
        payload = index.to_dict()
        assert payload["runs"] == []
        assert len(payload["records"]) == 3


# ---------------------------------------------------------------------------
# LedgerHub fan-out
# ---------------------------------------------------------------------------

class TestLedgerHub:
    def test_two_subscribers_each_get_every_event_once(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        ledger = RunLedger(path=path)
        hub = LedgerHub(path)
        first, second = hub.subscribe(), hub.subscribe()
        assert hub.subscriber_count == 2
        for i in range(5):
            ledger.emit("unit_started", f"u{i}")
        hub.pump()
        ledger.close()

        def _drain(subscription):
            seqs = []
            while True:
                event = subscription.get()
                if event is None:
                    return seqs
                seqs.append(event["seq"])

        assert _drain(first) == list(range(1, 7))
        assert _drain(second) == list(range(1, 7))
        first.close()
        assert hub.subscriber_count == 1

    def test_late_subscriber_resumes_without_duplicates(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        ledger = RunLedger(path=path, max_bytes=160)
        hub = LedgerHub(path)
        for i in range(10):
            ledger.emit("unit_started", f"u{i}")
        hub.pump()                           # hub is ahead of the client
        assert len(ledger_segments(path)) > 1
        resumed = hub.subscribe(last_seq=4)  # stored Last-Event-ID
        ledger.emit("sweep_end", status="ok")
        ledger.close()
        hub.pump()
        seqs = []
        while True:
            event = resumed.get()
            if event is None:
                break
            seqs.append(event["seq"])
        assert seqs == list(range(5, 13))    # catch-up + live, no seam
        assert hub.ended is True
        assert hub.last_seq() == 12

    def test_pending_is_non_destructive(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        RunLedger(path=path).close()
        hub = LedgerHub(path)
        subscription = hub.subscribe()
        assert subscription.pending() is True
        assert subscription.get()["seq"] == 1    # still delivered
        assert subscription.pending() is False


# ---------------------------------------------------------------------------
# HTTP endpoints against a finished run
# ---------------------------------------------------------------------------

class TestServeEndpoints:
    @pytest.fixture(scope="class")
    def smoke_dir(self, tmp_path_factory):
        return _smoke_artifacts(tmp_path_factory.mktemp("runs"))

    def test_root_and_runs_catalog(self, smoke_dir):
        with _Server(smoke_dir) as srv:
            status, root = srv.get_json("/")
            assert status == 200
            assert "/events?run=ID" in root["endpoints"]
            status, runs = srv.get_json("/runs")
            assert status == 200
            (run,) = runs["runs"]
            assert run["run_id"] == "smoke"
            assert run["status"] == "ok"
            assert run["artifacts"]["ledger"]["path"] == "smoke.jsonl"
            assert run["artifacts"]["metrics"]["path"] \
                == "smoke.metrics.json"

    def test_status_folds_run_state(self, smoke_dir):
        with _Server(smoke_dir) as srv:
            status, named = srv.get_json("/status?run=smoke")
            assert status == 200
            snap = named["status"]
            assert snap["end_status"] == "ok"
            assert snap["done"] == snap["total"] == len(SMOKE_APPS)
            states = {unit["key"]: unit["state"]
                      for unit in snap["units"]}
            assert states == {f"fig09::{app}": "ok"
                              for app in SMOKE_APPS}
            status, default = srv.get_json("/status")  # latest run
            assert status == 200 and default["run_id"] == "smoke"

    def test_metrics_content_type_and_cli_byte_identity(
            self, smoke_dir, capsys):
        from repro.__main__ import main
        snapshot_path = os.path.join(smoke_dir, "smoke.metrics.json")
        with _Server(smoke_dir) as srv:
            status, ctype, body = srv.get("/metrics?run=smoke")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        assert main(["obs", "report", "--metrics", snapshot_path,
                     "--prometheus"]) == 0
        cli_text = capsys.readouterr().out
        assert body.decode("utf-8") == cli_text        # byte-identical
        assert "# TYPE" in cli_text

    def test_events_streams_finished_ledger_to_close(self, smoke_dir):
        ledger_path = os.path.join(smoke_dir, "smoke.jsonl")
        expected = [e["seq"] for e in read_ledger(ledger_path)]
        with _Server(smoke_dir) as srv:
            conn, resp = srv.sse_connect("/events?run=smoke")
            frames = _read_frames(resp)    # runs until server closes
            conn.close()
        assert _ids(frames) == expected
        assert frames[0]["event"] == "ledger_open"
        assert frames[-1]["event"] == "sweep_end"
        assert json.loads(frames[-1]["data"])["seq"] == expected[-1]

    def test_events_resume_skips_delivered_prefix(self, smoke_dir):
        ledger_path = os.path.join(smoke_dir, "smoke.jsonl")
        expected = [e["seq"] for e in read_ledger(ledger_path)]
        with _Server(smoke_dir) as srv:
            conn, resp = srv.sse_connect("/events?run=smoke",
                                         last_event_id=expected[2])
            frames = _read_frames(resp)
            conn.close()
        assert _ids(frames) == expected[3:]

    def test_diff_self_compare_is_clean(self, smoke_dir):
        with _Server(smoke_dir) as srv:
            status, payload = srv.get_json("/diff?a=smoke&b=smoke")
        assert status == 200
        assert sorted(payload["kinds"]) == ["ledger", "metrics", "trace"]
        assert payload["gating"] == 0
        assert set(payload["verdicts"]) <= {"ok"}
        assert payload["aligned"] == len(payload["deltas"]) > 0

    def test_error_responses_are_json(self, smoke_dir):
        with _Server(smoke_dir) as srv:
            status, payload = srv.get_json("/status?run=nope")
            assert status == 404 and "nope" in payload["error"]
            status, payload = srv.get_json("/no/such")
            assert status == 404 and "endpoint" in payload["error"]
            status, payload = srv.get_json("/diff?a=smoke")
            assert status == 400 and "two run ids" in payload["error"]

    def test_empty_directory_404s_with_hint(self, tmp_path):
        with _Server(str(tmp_path)) as srv:
            status, payload = srv.get_json("/status")
            assert status == 404
            assert "ledger" in payload["error"]
            status, runs = srv.get_json("/runs")
            assert status == 200 and runs["runs"] == []


# ---------------------------------------------------------------------------
# The acceptance pin: concurrent SSE clients + reconnect + rotation
# ---------------------------------------------------------------------------

class TestSSEReconnect:
    def test_two_clients_one_reconnects_across_rotation(self, tmp_path):
        """Client A stays connected for the whole run; client B reads a
        prefix, drops the connection, and resumes from its stored
        ``Last-Event-ID`` — while the writer keeps appending and the
        sink rotates in between. Both clients must observe the full
        event sequence exactly once."""
        path = str(tmp_path / "live.jsonl")
        ledger = RunLedger(path=path, max_bytes=200,
                           meta={"experiments": SMOKE_EXPERIMENTS})
        for i in range(4):
            ledger.emit("unit_started", f"fig09::u{i}")
        with _Server(str(tmp_path)) as srv:
            conn_a, resp_a = srv.sse_connect("/events?run=live")
            conn_b, resp_b = srv.sse_connect("/events?run=live")
            head_a = _read_frames(resp_a, limit=5)
            head_b = _read_frames(resp_b, limit=3)
            assert _ids(head_a) == [1, 2, 3, 4, 5]
            assert _ids(head_b) == [1, 2, 3]
            stored = int(head_b[-1]["id"])     # B's Last-Event-ID
            conn_b.close()                     # B drops mid-stream

            for i in range(4, 12):             # writer keeps going...
                ledger.emit("unit_started", f"fig09::u{i}")
            ledger.emit("sweep_end", status="ok")
            ledger.close()
            assert len(ledger_segments(path)) > 1   # ...and rotated

            tail_a = _read_frames(resp_a)      # A rides through it all
            conn_a.close()
            conn_b2, resp_b2 = srv.sse_connect("/events?run=live",
                                               last_event_id=stored)
            tail_b = _read_frames(resp_b2)     # B resumes exactly-once
            conn_b2.close()

        full = list(range(1, 15))              # open + 12 units + end
        assert _ids(head_a) + _ids(tail_a) == full
        assert _ids(head_b) + _ids(tail_b) == full
        assert json.loads(tail_b[-1]["data"])["type"] == "sweep_end"


# ---------------------------------------------------------------------------
# serve() CLI entry + watch --wait + JSON CLI modes
# ---------------------------------------------------------------------------

class TestServeCLI:
    def test_missing_directory_is_usage_error(self, tmp_path, capsys):
        assert serve(str(tmp_path / "absent")) == 2

    def test_port_conflict_is_usage_error(self, tmp_path):
        with _Server(str(tmp_path)) as srv:
            messages = []
            assert serve(str(tmp_path), port=srv.port,
                         log=messages.append) == 2
            assert "cannot bind" in messages[0]

    def test_cli_rejects_bad_poll_interval(self, tmp_path):
        from repro.__main__ import main
        assert main(["obs", "serve", "--dir", str(tmp_path),
                     "--poll-interval", "0"]) == 2

    def test_sigterm_drains_to_exit_zero(self, tmp_path):
        """The CI contract: SIGTERM on a serving process yields a clean
        exit 0 after the shutdown message."""
        import re
        import signal
        import subprocess
        import sys
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "obs", "serve",
             "--dir", str(tmp_path), "--port", "0"],
            stderr=subprocess.PIPE, text=True, env=env)
        try:
            lines = [proc.stderr.readline(), proc.stderr.readline()]
            banner = "".join(lines)
            assert re.search(r"listening on http://127\.0\.0\.1:\d+",
                             banner)
            proc.send_signal(signal.SIGTERM)
            out = proc.stderr.read()
            assert proc.wait(timeout=10) == 0
            assert "SIGTERM received; shutting down" in out
        finally:
            proc.kill()


class TestWatchWait:
    def test_wait_polls_until_ledger_appears(self, tmp_path):
        from repro.obs.live import watch
        path = str(tmp_path / "late.jsonl")
        frames, naps = [], []

        def arrive_during_nap(seconds):
            naps.append(seconds)
            ledger = RunLedger(path=path)
            ledger.emit("sweep_begin", jobs=1)
            ledger.emit("sweep_plan", units=1, skipped=0)
            ledger.emit("sweep_end", status="ok")
            ledger.close()

        code = watch(path, once=True, wait=True, interval_s=0.01,
                     write=frames.append, sleep=arrive_during_nap)
        assert code == 0
        assert naps == [0.01]                  # exactly one wait nap
        assert "ENDED (ok)" in "\n".join(frames)

    def test_wait_timeout_expires_to_exit_2(self, tmp_path):
        from repro.obs.live import watch
        ticks = iter([0.0, 10.0, 20.0])
        frames = []
        code = watch(str(tmp_path / "never.jsonl"), wait=True,
                     timeout_s=5.0, interval_s=0.01,
                     write=frames.append, sleep=lambda s: None,
                     clock=lambda: next(ticks))
        assert code == 2
        assert "after waiting 5s" in frames[0]

    def test_no_wait_no_ledger_exits_nonzero_cli(self, tmp_path, capsys):
        from repro.__main__ import main
        assert main(["obs", "watch", str(tmp_path / "none.jsonl"),
                     "--once"]) == 2
        assert "no ledger" in capsys.readouterr().out

    def test_cli_rejects_nonpositive_timeout(self, tmp_path):
        from repro.__main__ import main
        assert main(["obs", "watch", str(tmp_path / "x.jsonl"),
                     "--wait", "--timeout", "0"]) == 2


class TestJsonCLIModes:
    def test_diff_json_round_trips(self, tmp_path, capsys):
        from repro.__main__ import main
        path = str(tmp_path / "run.jsonl")
        ledger = RunLedger(path=path)
        ledger.emit("sweep_begin", jobs=1)
        ledger.emit("unit_started", "fig09::ATA")
        ledger.emit("unit_completed", "fig09::ATA", status="ok",
                    attempts=1, unit_wall_s=1.0)
        ledger.emit("sweep_end", status="ok")
        ledger.close()
        assert main(["obs", "diff", "--ledger", path, path,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["gating"] == 0
        assert payload["verdicts"] == {"ok": payload["aligned"]}
        assert {d["kind"] for d in payload["deltas"]} == {"ledger"}

    def test_report_prometheus_requires_metrics(self, capsys):
        from repro.__main__ import main
        assert main(["obs", "report", "--prometheus"]) == 2
        assert "--metrics" in capsys.readouterr().err

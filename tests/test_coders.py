"""Unit and property tests for the three BVF coders and their spaces."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import (
    CODER_SPACES, ComposedCoder, DEFAULT_PIVOT_LANE, IdentityCoder,
    ISACoder, NVCoder, REFERENCE_MASKS, Unit, VSCoder, coders_for_unit,
    count_bits, derive_mask, encoding_gain, hamming_objective,
    hamming_weight, mask_to_hex, units_for_coder, xnor,
)

u32s = st.integers(min_value=0, max_value=0xFFFFFFFF)
u32_arrays = st.lists(u32s, min_size=1, max_size=64).map(
    lambda xs: np.array(xs, dtype=np.uint32))
warp_blocks = st.lists(u32s, min_size=32, max_size=32).map(
    lambda xs: np.array(xs, dtype=np.uint32))


class TestXnor:
    def test_identity_with_all_ones(self):
        assert int(xnor(np.uint32(0x1234), np.uint32(0xFFFFFFFF))) == 0x1234

    def test_inverts_with_zero(self):
        assert int(xnor(np.uint32(0), np.uint32(0))) == 0xFFFFFFFF

    @given(u32s, u32s)
    def test_commutative(self, a, b):
        assert int(xnor(np.uint32(a), np.uint32(b))) == int(
            xnor(np.uint32(b), np.uint32(a)))

    @given(u32s, u32s)
    def test_involution(self, a, b):
        once = xnor(np.uint32(a), np.uint32(b))
        assert int(xnor(once, np.uint32(b))) == a


class TestNVCoder:
    def setup_method(self):
        self.nv = NVCoder()

    def test_positive_narrow_becomes_dense(self):
        # 5 = 29 leading zeros; after NV almost all ones.
        encoded = self.nv.encode_words(np.array([5], dtype=np.uint32))
        assert hamming_weight(encoded) >= 29

    def test_zero_becomes_31_ones(self):
        encoded = self.nv.encode_words(np.array([0], dtype=np.uint32))
        assert int(encoded[0]) == 0x7FFFFFFF

    def test_negative_unchanged(self):
        word = np.array([0xFFFFFFF0], dtype=np.uint32)
        assert np.array_equal(self.nv.encode_words(word), word)

    def test_sign_bit_preserved(self):
        words = np.array([0x00000001, 0x80000001], dtype=np.uint32)
        enc = self.nv.encode_words(words)
        assert (enc >> 31).tolist() == [0, 1]

    @given(u32_arrays)
    def test_involution(self, words):
        assert self.nv.is_involution_on(words)

    @given(u32_arrays)
    def test_improves_narrow_positive_data(self, words):
        narrow = words % 1024          # narrow positive values
        gain = encoding_gain(narrow, self.nv.encode_words(narrow))
        assert gain.improves

    def test_scalar_input(self):
        assert int(self.nv.encode_words(np.uint32(0))) == 0x7FFFFFFF

    def test_units_match_table1(self):
        assert self.nv.units == units_for_coder("NV")
        assert Unit.SME in self.nv.units
        assert Unit.L1I not in self.nv.units


class TestVSCoder:
    def setup_method(self):
        self.vs = VSCoder()

    def test_default_pivot_is_21(self):
        assert self.vs.pivot_index == DEFAULT_PIVOT_LANE == 21

    def test_pivot_stored_raw(self):
        block = np.arange(32, dtype=np.uint32)
        enc = self.vs.encode_words(block)
        assert enc[21] == block[21]

    def test_identical_lanes_become_all_ones(self):
        block = np.full(32, 0xDEADBEEF, dtype=np.uint32)
        enc = self.vs.encode_words(block)
        non_pivot = np.delete(enc, 21)
        assert (non_pivot == 0xFFFFFFFF).all()

    @given(warp_blocks)
    def test_involution(self, block):
        assert self.vs.is_involution_on(block)

    @given(warp_blocks)
    def test_similar_data_improves(self, block):
        similar = (block & np.uint32(0xFF)) | np.uint32(0x3F800000)
        gain = encoding_gain(similar, self.vs.encode_words(similar))
        assert gain.improves

    def test_short_block_pivot_clamped(self):
        block = np.arange(4, dtype=np.uint32)
        enc = self.vs.encode_words(block)
        assert enc[3] == block[3]      # pivot falls back to last element
        assert np.array_equal(self.vs.decode_words(enc), block)

    def test_line_pivot_zero(self):
        vs0 = VSCoder(pivot_index=0)
        line = np.full(32, 7, dtype=np.uint32)
        enc = vs0.encode_words(line)
        assert enc[0] == 7 and (enc[1:] == 0xFFFFFFFF).all()

    def test_negative_pivot_rejected(self):
        with pytest.raises(ValueError):
            VSCoder(pivot_index=-1)

    def test_masked_roundtrip_with_inactive_pivot(self):
        block = np.arange(32, dtype=np.uint32) + 100
        active = np.ones(32, dtype=bool)
        active[21] = False
        enc = self.vs.encode_masked(block, active)
        dec = self.vs.decode_masked(enc, active)
        assert np.array_equal(dec, block)

    def test_masked_inactive_lanes_untouched(self):
        block = np.arange(32, dtype=np.uint32)
        active = np.zeros(32, dtype=bool)
        active[:8] = True
        enc = self.vs.encode_masked(block, active)
        assert np.array_equal(enc[8:], block[8:])

    def test_masked_no_active_lanes(self):
        block = np.arange(32, dtype=np.uint32)
        enc = self.vs.encode_masked(block, np.zeros(32, dtype=bool))
        assert np.array_equal(enc, block)

    def test_masked_shape_mismatch(self):
        with pytest.raises(ValueError):
            self.vs.encode_masked(np.zeros(32, dtype=np.uint32),
                                  np.ones(16, dtype=bool))

    @given(warp_blocks, st.lists(st.booleans(), min_size=32, max_size=32))
    def test_masked_involution(self, block, mask):
        active = np.array(mask, dtype=bool)
        enc = self.vs.encode_masked(block, active)
        assert np.array_equal(self.vs.decode_masked(enc, active), block)

    def test_units_exclude_sme(self):
        assert Unit.SME not in self.vs.units


class TestISACoder:
    def test_mask_word_encodes_to_all_ones(self):
        mask = REFERENCE_MASKS["Pascal"]
        coder = ISACoder(mask)
        enc = coder.encode_words(np.array([mask], dtype=np.uint64))
        assert int(enc[0]) == 0xFFFFFFFFFFFFFFFF

    @given(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=32))
    def test_involution(self, words):
        coder = ISACoder(REFERENCE_MASKS["Kepler"])
        arr = np.array(words, dtype=np.uint64)
        assert np.array_equal(coder.encode_words(coder.encode_words(arr)),
                              arr)

    def test_majority_mask_maximises_ones(self):
        """derive_mask must beat every other mask on its own corpus."""
        rng = np.random.default_rng(7)
        corpus = rng.integers(0, 1 << 16, 200, dtype=np.uint64)
        mask = derive_mask(corpus)
        best = hamming_weight(ISACoder(mask).encode_words(corpus), 64)
        for other in (0, 0xFFFFFFFFFFFFFFFF, REFERENCE_MASKS["Fermi"]):
            alt = hamming_weight(ISACoder(other).encode_words(corpus), 64)
            assert best >= alt

    def test_mask_hex_format(self):
        assert mask_to_hex(REFERENCE_MASKS["Pascal"]) == \
            "0x4818-0000-0007-0201"

    def test_reference_masks_all_architectures(self):
        assert set(REFERENCE_MASKS) == {"Fermi", "Kepler", "Maxwell",
                                        "Pascal"}

    def test_derive_mask_empty_corpus(self):
        with pytest.raises(ValueError):
            derive_mask(np.array([], dtype=np.uint64))

    def test_isa_space(self):
        coder = ISACoder(0)
        assert Unit.IFB in coder.units and Unit.REG not in coder.units


class TestComposition:
    def test_identity_coder_is_noop(self):
        ident = IdentityCoder()
        words = np.arange(10, dtype=np.uint32)
        assert np.array_equal(ident.encode_words(words), words)
        assert ident.units == frozenset()

    def test_nv_vs_composition_roundtrip(self):
        composed = ComposedCoder([NVCoder(), VSCoder()])
        block = np.arange(32, dtype=np.uint32) * 3
        enc = composed.encode_words(block)
        assert np.array_equal(composed.decode_words(enc), block)

    @given(warp_blocks)
    def test_nv_and_vs_commute(self, block):
        """NV and VS commute: both are XNOR-affine, and the sign of a
        VS-encoded word equals the XNOR of the operand signs, which
        makes the sign-conditional NV masks cancel. This is what makes
        Section 3.3's overlapping-space property unconditional."""
        a = ComposedCoder([NVCoder(), VSCoder()])
        b = ComposedCoder([VSCoder(), NVCoder()])
        assert np.array_equal(a.encode_words(block), b.encode_words(block))

    def test_abbrs(self):
        assert ComposedCoder([NVCoder(), VSCoder()]).abbrs == ("NV", "VS")

    def test_overlapping_spaces_property_ii(self):
        """Section 3.3 property II: layered spaces recover independently."""
        nv, vs = NVCoder(), VSCoder()
        block = np.arange(32, dtype=np.uint32) * 17 + 3
        stored = vs.encode_words(nv.encode_words(block))
        # The VS space decodes its layer; the NV layer is then intact.
        assert np.array_equal(nv.decode_words(vs.decode_words(stored)),
                              block)


class TestSpaces:
    def test_table1_nv(self):
        assert units_for_coder("NV") == frozenset({
            Unit.REG, Unit.SME, Unit.L1D, Unit.L1T, Unit.L1C, Unit.NOC,
            Unit.L2})

    def test_table1_vs(self):
        assert units_for_coder("VS") == frozenset({
            Unit.REG, Unit.L1D, Unit.L1T, Unit.L1C, Unit.NOC, Unit.L2})

    def test_table1_isa(self):
        assert units_for_coder("ISA") == frozenset({
            Unit.IFB, Unit.L1I, Unit.NOC, Unit.L2})

    def test_unknown_coder(self):
        with pytest.raises(KeyError):
            units_for_coder("XYZ")

    def test_coders_for_reg(self):
        assert coders_for_unit(Unit.REG) == ("NV", "VS")

    def test_coders_for_sme(self):
        assert coders_for_unit(Unit.SME) == ("NV",)

    def test_coders_for_l1i(self):
        assert coders_for_unit(Unit.L1I) == ("ISA",)

    def test_overlap(self):
        overlap = CODER_SPACES["NV"].overlap(CODER_SPACES["VS"])
        assert Unit.REG in overlap and Unit.SME not in overlap


class TestInvolutionProperties:
    """Property-based involution checks across every coder, including
    masked encode/decode paths and the all-lanes-inactive edge case.
    These pin the algebra the golden-result suite leans on: an encode
    that fails to invert would silently skew every toggle statistic."""

    u64s = st.integers(min_value=0, max_value=2**64 - 1)
    lane_masks = st.lists(st.booleans(), min_size=32, max_size=32).map(
        lambda bs: np.array(bs, dtype=bool))

    @given(u32_arrays)
    def test_composed_nv_vs_involution(self, words):
        composed = ComposedCoder([NVCoder(), VSCoder()])
        enc = composed.encode_words(words)
        assert np.array_equal(composed.decode_words(enc), words)
        assert np.array_equal(composed.encode_words(enc), words)

    @given(u32_arrays, st.integers(0, 31))
    def test_composed_involution_any_pivot(self, words, pivot):
        composed = ComposedCoder([NVCoder(), VSCoder(pivot_index=pivot)])
        assert np.array_equal(
            composed.decode_words(composed.encode_words(words)), words)

    @given(warp_blocks, lane_masks)
    def test_masked_encode_decode_involution(self, block, active):
        vs = VSCoder()
        enc = vs.encode_masked(block, active)
        assert np.array_equal(vs.decode_masked(enc, active), block)
        # Inactive lanes must pass through encode untouched.
        assert np.array_equal(enc[~active], block[~active])

    @given(warp_blocks)
    def test_masked_all_lanes_inactive_is_identity(self, block):
        vs = VSCoder()
        nothing = np.zeros(32, dtype=bool)
        enc = vs.encode_masked(block, nothing)
        assert np.array_equal(enc, block)
        assert np.array_equal(vs.decode_masked(enc, nothing), block)

    @given(warp_blocks, st.integers(0, 31))
    def test_masked_single_active_lane(self, block, lane):
        # One active lane: it must be its own pivot and survive intact.
        vs = VSCoder()
        active = np.zeros(32, dtype=bool)
        active[lane] = True
        enc = vs.encode_masked(block, active)
        assert np.array_equal(vs.decode_masked(enc, active), block)

    @given(st.lists(u64s, min_size=1, max_size=64), u64s)
    def test_isa_involution_any_mask(self, words, mask):
        coder = ISACoder(mask)
        arr = np.array(words, dtype=np.uint64)
        enc = coder.encode_words(arr)
        assert np.array_equal(coder.decode_words(enc), arr)

    @given(u32_arrays)
    def test_nv_decode_is_encode(self, words):
        nv = NVCoder()
        assert np.array_equal(nv.decode_words(nv.encode_words(words)),
                              words)


class TestObjective:
    def test_hamming_objective_counts_ones(self):
        assert hamming_objective(np.array([0xF], dtype=np.uint32)) == 4

    def test_gain_size_mismatch(self):
        with pytest.raises(ValueError):
            encoding_gain(np.zeros(2, dtype=np.uint32),
                          np.zeros(3, dtype=np.uint32))

    def test_gain_fractions(self):
        base = np.array([0], dtype=np.uint32)
        enc = np.array([0xFFFFFFFF], dtype=np.uint32)
        g = encoding_gain(base, enc)
        assert g.baseline_one_fraction == 0.0
        assert g.encoded_one_fraction == 1.0
        assert g.gained_ones == 32

"""Tests for the bus-invert baseline, ablation studies and the CLI."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.bitutils import hamming_distance, popcount32
from repro.core.businvert import (BusInvertDecoder, BusInvertEncoder,
                                  bus_invert_toggles)
from repro.experiments import run_experiment
from repro.kernels import get_app

u32s = st.integers(min_value=0, max_value=0xFFFFFFFF)

SUBSET = [get_app(n) for n in ("ATA", "BLA", "VEC", "PAT")]


class TestBusInvert:
    def test_small_change_not_inverted(self):
        enc = BusInvertEncoder()
        enc.encode(0)
        wire, invert = enc.encode(1)     # 1 toggle < 16
        assert not invert and wire == 1

    def test_large_change_inverted(self):
        enc = BusInvertEncoder()
        enc.encode(0)
        wire, invert = enc.encode(0xFFFFFFFF)   # 32 toggles > 16
        assert invert and wire == 0

    def test_stream_roundtrip(self):
        rng = np.random.default_rng(5)
        words = rng.integers(0, 2**32, 256, dtype=np.uint32)
        enc = BusInvertEncoder()
        wire, flags = enc.encode_stream(words)
        decoded = BusInvertDecoder().decode_stream(wire, flags)
        assert np.array_equal(decoded, words)

    @given(st.lists(u32s, min_size=1, max_size=64))
    def test_roundtrip_property(self, vals):
        words = np.array(vals, dtype=np.uint32)
        wire, flags = BusInvertEncoder().encode_stream(words)
        assert np.array_equal(
            BusInvertDecoder().decode_stream(wire, flags), words)

    @given(st.lists(u32s, min_size=2, max_size=64))
    def test_wire_distance_never_exceeds_half(self, vals):
        """The scheme's guarantee: <=16 data-wire toggles per transfer."""
        words = np.array(vals, dtype=np.uint32)
        wire, __ = BusInvertEncoder().encode_stream(words)
        dists = hamming_distance(wire[1:], wire[:-1])
        assert int(dists.max()) <= 16

    def test_toggle_reduction_on_random_data(self):
        rng = np.random.default_rng(11)
        words = rng.integers(0, 2**32, 512, dtype=np.uint32)
        raw, coded = bus_invert_toggles(words)
        assert coded < raw

    def test_no_weight_benefit(self):
        """Bus-invert ignores Hamming weight — the paper's objection."""
        rng = np.random.default_rng(11)
        words = rng.integers(0, 256, 512, dtype=np.uint32)  # mostly zeros
        wire, __ = BusInvertEncoder().encode_stream(words)
        raw_ones = int(popcount32(words).sum())
        wire_ones = int(popcount32(wire).sum())
        assert wire_ones <= raw_ones * 1.1   # no systematic increase in 1s

    def test_decoder_shape_mismatch(self):
        with pytest.raises(ValueError):
            BusInvertDecoder().decode_stream(
                np.zeros(4, dtype=np.uint32), np.zeros(3, dtype=bool))

    def test_empty_stream(self):
        assert bus_invert_toggles(np.array([], dtype=np.uint32)) == (0, 0)

    def test_inversion_stats_tracked(self):
        enc = BusInvertEncoder()
        enc.encode(0)
        enc.encode(0xFFFFFFFF)
        assert enc.transmissions == 2 and enc.inversions == 1


class TestAblations:
    def test_isa_mask_ablation(self):
        result = run_experiment("ablation-isa", apps=SUBSET)
        s = result.summary
        # Static beats uncoded; dynamic beats (or ties) static.
        assert s["static_one_fraction"] > s["base_one_fraction"]
        assert s["dynamic_extra_gain"] >= -1e-9
        # The paper's justification for shipping the static design:
        # the dynamic method's extra gain is small.
        assert s["dynamic_extra_gain"] < 0.15

    def test_pivot_ablation_lane0_worst(self):
        result = run_experiment("ablation-pivot", apps=SUBSET)
        s = result.summary
        middle = min(s["lane16_mean_excess"], s["lane21_mean_excess"])
        assert s["lane0_mean_excess"] >= middle

    def test_bus_invert_ablation(self):
        result = run_experiment("ablation-businvert", apps=SUBSET)
        s = result.summary
        # Bus-invert reduces toggles on the mixed stream...
        assert s["businvert_toggles"] < s["raw_toggles"]
        # ...but leaves the bit-1 fraction low, while BVF maximises it.
        assert s["bvf_one_fraction"] > s["businvert_one_fraction"] + 0.2


class TestCLI:
    def test_list(self, capsys):
        from repro.__main__ import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out and "ATA" in out

    def test_run_static_experiment(self, capsys):
        from repro.__main__ import main
        assert main(["run", "fig01"]) == 0
        assert "Gflops/W" in capsys.readouterr().out

    def test_run_with_app_subset(self, capsys):
        from repro.__main__ import main
        assert main(["run", "fig08", "--apps", "ATA,VEC"]) == 0
        assert "AVG" in capsys.readouterr().out

    def test_run_unknown(self, capsys):
        from repro.__main__ import main
        assert main(["run", "fig99"]) == 2

    def test_app_command(self, capsys):
        from repro.__main__ import main
        assert main(["app", "VEC"]) == 0
        assert "saved" in capsys.readouterr().out

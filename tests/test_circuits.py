"""Unit tests for the circuit substrate: technology, netlist, bitcells,
arrays and the 6T-BVF reliability analysis."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.circuits import (
    AccessKind, ArrayGeometry, BVF8T, CELL_TYPES, GainCellEDRAM, Netlist,
    SRAM6T, SRAM6TBVF, SRAM8T, SRAMArray, SwingEvent, TECH_28NM, TECH_40NM,
    TECH_65NM, TECH_BY_NAME, PSTATES, energy_table, leakage_scale,
    max_safe_cells_per_bitline, read_disturbance, sweep_cells_per_bitline,
)


class TestTechnology:
    def test_registry_complete(self):
        assert set(TECH_BY_NAME) == {"28nm", "40nm", "65nm"}

    def test_caps_scale_with_node(self):
        assert TECH_28NM.cgate_ff_per_um < TECH_40NM.cgate_ff_per_um
        assert TECH_40NM.cgate_ff_per_um < TECH_65NM.cgate_ff_per_um

    def test_wire_cap_linear(self):
        assert TECH_28NM.wire_cap_ff(200) == pytest.approx(
            2 * TECH_28NM.wire_cap_ff(100))

    def test_nmos_drive_ratio_range(self):
        for tech in TECH_BY_NAME.values():
            assert 1.5 <= tech.nmos_drive_ratio() <= 2.1

    def test_pstates_match_paper(self):
        points = {(p.vdd, p.freq_mhz) for p in PSTATES}
        assert points == {(1.2, 700), (0.9, 500), (0.6, 300)}

    def test_leakage_scale_nominal_is_one(self):
        assert leakage_scale(TECH_28NM, 1.2) == pytest.approx(1.0)

    def test_leakage_drops_with_voltage(self):
        assert leakage_scale(TECH_28NM, 0.6) < 0.1

    def test_leakage_60x_claim(self):
        # Section 2.2: >60x leakage reduction from 1.2V to ~0.41V.
        assert 1.0 / leakage_scale(TECH_28NM, 0.41) > 60

    def test_leakage_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            leakage_scale(TECH_28NM, 0.0)


class TestNetlist:
    def test_full_cycle_energy(self):
        net = Netlist(vdd=1.2)
        net.add_node("bl", 100.0)
        result = net.evaluate(net.full_cycle("bl"))
        assert result.energy_fj == pytest.approx(100.0 * 1.2 * 1.2)

    def test_pulse_same_as_cycle(self):
        net = Netlist(vdd=1.0)
        net.add_node("wl", 50.0)
        assert net.evaluate(net.pulse("wl")).energy_fj == pytest.approx(
            net.evaluate(net.full_cycle("wl")).energy_fj)

    def test_falling_edge_is_free(self):
        net = Netlist(vdd=1.2)
        net.add_node("n", 10.0)
        result = net.evaluate([SwingEvent("n", 1.2, 0.0)])
        assert result.energy_fj == 0.0

    def test_unknown_node_raises(self):
        net = Netlist(vdd=1.2)
        with pytest.raises(KeyError):
            net.evaluate([SwingEvent("ghost", 0.0, 1.2)])

    def test_out_of_rail_raises(self):
        net = Netlist(vdd=1.0)
        net.add_node("n", 1.0)
        with pytest.raises(ValueError):
            net.evaluate([SwingEvent("n", 0.0, 2.0)])

    def test_duplicate_node_raises(self):
        net = Netlist(vdd=1.0)
        net.add_node("n", 1.0)
        with pytest.raises(ValueError):
            net.add_node("n", 2.0)

    def test_negative_cap_raises(self):
        net = Netlist(vdd=1.0)
        with pytest.raises(ValueError):
            net.add_node("n", -1.0)

    def test_parallel_sums(self):
        net = Netlist(vdd=1.0)
        node = net.add_parallel("n", 1.0, 2.0, 3.0)
        assert node.capacitance_ff == 6.0

    def test_dominated_by(self):
        net = Netlist(vdd=1.0)
        net.add_node("big", 100.0)
        net.add_node("small", 1.0)
        result = net.evaluate(net.full_cycle("big")
                              + net.full_cycle("small"))
        assert result.dominated_by() == "big"


class TestBitcells:
    def test_registry(self):
        assert set(CELL_TYPES) == {"6T", "6T-BVF", "8T", "BVF-8T",
                                   "eDRAM-3T"}

    def test_6t_is_value_symmetric(self):
        cell = SRAM6T()
        for kind in AccessKind:
            c0 = sum(s.cycles for s in cell.access_swings(kind, 0))
            c1 = sum(s.cycles for s in cell.access_swings(kind, 1))
            assert c0 == c1

    def test_8t_read_favors_one(self):
        assert SRAM8T().favors_bit1(AccessKind.READ)

    def test_8t_write_symmetric(self):
        assert not SRAM8T().favors_bit1(AccessKind.WRITE)

    def test_bvf8t_favors_one_both_ways(self):
        cell = BVF8T()
        assert cell.favors_bit1(AccessKind.READ)
        assert cell.favors_bit1(AccessKind.WRITE)

    def test_bvf8t_write_miss_doubles(self):
        # Figure 4-C: a write-0 miss swings both bitlines.
        swings = BVF8T().access_swings(AccessKind.WRITE, 0)
        assert len(swings) == 2
        assert BVF8T().access_swings(AccessKind.WRITE, 1) == ()

    def test_edram_single_ended_write_miss(self):
        # Section 7.2: eDRAM write-0 costs one swing, not two.
        assert len(GainCellEDRAM().access_swings(AccessKind.WRITE, 0)) == 1

    def test_edram_refresh_favors_one(self):
        cell = GainCellEDRAM()
        assert len(cell.refresh_swings(1)) < len(cell.refresh_swings(0))

    def test_area_factors(self):
        assert CELL_TYPES["8T"].area_factor > CELL_TYPES["6T"].area_factor
        assert CELL_TYPES["eDRAM-3T"].area_factor < 1.0

    def test_leakage_bit_validation(self):
        with pytest.raises(ValueError):
            SRAM8T().leakage_power_w(2, TECH_28NM, 1.2)

    def test_bvf_leakage_calibration(self):
        """Section 3.1's three reported numbers, exactly."""
        bvf = BVF8T()
        conv = SRAM8T()
        assert 1 - bvf.leakage_factor(0) / conv.leakage_factor(0) == \
            pytest.approx(0.0043)
        assert 1 - bvf.leakage_factor(1) / conv.leakage_factor(1) == \
            pytest.approx(0.0301)
        assert 1 - bvf.leakage_factor(1) / bvf.leakage_factor(0) == \
            pytest.approx(0.0961)

    def test_6t_bvf_retrofit_favors_one(self):
        cell = SRAM6TBVF()
        assert cell.favors_bit1(AccessKind.READ)
        assert cell.favors_bit1(AccessKind.WRITE)


class TestArray:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            ArrayGeometry(rows=0)

    def test_bitline_cap_grows_with_rows(self):
        small = SRAMArray(SRAM8T(), ArrayGeometry(rows=16), TECH_28NM)
        large = SRAMArray(SRAM8T(), ArrayGeometry(rows=128), TECH_28NM)
        assert large.bitline_cap_ff("rbl") > small.bitline_cap_ff("rbl")

    def test_energy_positive(self):
        table = energy_table("BVF-8T", "28nm", 1.2)
        for e in table.read_fj + table.write_fj:
            assert e > 0

    def test_read1_much_cheaper(self):
        table = energy_table("BVF-8T", "28nm", 1.2)
        assert table.read_fj[1] < 0.3 * table.read_fj[0]

    def test_write_miss_roughly_doubles(self):
        bvf = energy_table("BVF-8T", "28nm", 1.2)
        conv = energy_table("8T", "28nm", 1.2)
        assert bvf.write_fj[0] > 1.5 * conv.write_fj[0]

    def test_energy_quadratic_in_vdd(self):
        hi = energy_table("8T", "28nm", 1.2)
        lo = energy_table("8T", "28nm", 0.6)
        assert lo.read_fj[0] == pytest.approx(hi.read_fj[0] / 4, rel=0.01)

    def test_asymmetry_consistent_across_nodes(self):
        for tech in ("28nm", "40nm"):
            t = energy_table("BVF-8T", tech, 1.2)
            assert t.read_fj[1] < t.read_fj[0]
            assert t.write_fj[1] < t.write_fj[0]

    def test_value_symmetric_average(self):
        t = energy_table("8T", "28nm", 1.2)
        assert t.value_symmetric_read_fj == pytest.approx(
            0.5 * (t.read_fj[0] + t.read_fj[1]))

    def test_energy_fj_accumulates(self):
        t = energy_table("8T", "28nm", 1.2)
        total = t.energy_fj(1, 2, 3, 4)
        expected = (t.read_fj[0] + 2 * t.read_fj[1]
                    + 3 * t.write_fj[0] + 4 * t.write_fj[1])
        assert total == pytest.approx(expected)

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            energy_table("9T", "28nm", 1.2)

    def test_unknown_tech_raises(self):
        with pytest.raises(KeyError):
            energy_table("8T", "22nm", 1.2)

    def test_refresh_only_for_edram(self):
        arr = SRAMArray(SRAM8T(), ArrayGeometry(), TECH_28NM)
        with pytest.raises(TypeError):
            arr.refresh_energy_fj(0)

    def test_bad_bit_raises(self):
        arr = SRAMArray(SRAM8T(), ArrayGeometry(), TECH_28NM)
        with pytest.raises(ValueError):
            arr.access_energy_fj(AccessKind.READ, 2)

    @given(st.sampled_from(["6T", "8T", "BVF-8T", "eDRAM-3T"]),
           st.sampled_from(["28nm", "40nm", "65nm"]),
           st.floats(min_value=0.5, max_value=1.2))
    def test_tables_always_positive(self, cell, tech, vdd):
        t = energy_table(cell, tech, round(vdd, 2))
        assert min(t.read_fj + t.write_fj) > 0
        assert min(t.leak_w_per_cell) > 0


class TestReliability:
    def test_paper_threshold(self):
        assert max_safe_cells_per_bitline(TECH_28NM) == 16

    def test_disturbance_monotone_in_cells(self):
        sweep = sweep_cells_per_bitline(range(1, 64), TECH_28NM)
        values = [d.disturbance_v for d in sweep]
        assert values == sorted(values)

    def test_flip_flag_consistent(self):
        d = read_disturbance(128, TECH_28NM)
        assert d.flips and d.margin_v < 0

    def test_safe_at_small_loading(self):
        d = read_disturbance(4, TECH_28NM)
        assert not d.flips and d.margin_v > 0

    def test_rejects_zero_cells(self):
        with pytest.raises(ValueError):
            read_disturbance(0)

    def test_snm_scales_with_voltage(self):
        lo = read_disturbance(8, TECH_28NM, vdd=0.6)
        hi = read_disturbance(8, TECH_28NM, vdd=1.2)
        assert lo.snm_v < hi.snm_v

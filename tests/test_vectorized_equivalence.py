"""Differential harness: vectorized hot paths vs pinned scalar oracles.

The replay/simulate pipeline was rewritten as whole-trace NumPy
bitplane operations (batched popcounts, bincount bit-plane histograms,
XNOR block coding, wire-state toggle matrices, deferred tallying).
Every fast path here is driven against a slow reference that is either
pure-Python bit arithmetic or a verbatim copy of the pre-vectorization
scalar implementation, over random, adversarial and empty inputs.

These oracles are pinned on purpose: do not "simplify" them to call
the code under test.
"""

import multiprocessing

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.gpu import GPUReplay
from repro.arch.memory import GlobalMemory
from repro.arch.stats import Encoders, NoCStats, Tally, TallyBatch, VARIANTS
from repro.core import bitutils as bu
from repro.core.coders import VSCoder, xnor
from repro.core.spaces import Unit

LANES = 32

u32s = st.integers(min_value=0, max_value=0xFFFFFFFF)
u64s = st.integers(min_value=0, max_value=0xFFFFFFFFFFFFFFFF)
u8s = st.integers(min_value=0, max_value=0xFF)

#: Adversarial uint32 word patterns: all-zeros, all-ones, alternating
#: bits and bytes, sign-boundary values.
ADVERSARIAL_U32 = [0, 0xFFFFFFFF, 0xAAAAAAAA, 0x55555555,
                   0x00FF00FF, 0xFF00FF00, 0x80000000, 0x7FFFFFFF, 1]
ADVERSARIAL_U64 = [0, 0xFFFFFFFFFFFFFFFF, 0xAAAAAAAAAAAAAAAA,
                   0x5555555555555555, 0x8000000000000000, 1,
                   0x00FF00FF00FF00FF]


# ---------------------------------------------------------------------------
# Pinned scalar oracles (pre-vectorization implementations / pure Python)
# ---------------------------------------------------------------------------

def oracle_popcount(value: int) -> int:
    return bin(int(value)).count("1")


def oracle_leading_zeros32(value: int) -> int:
    return 32 - int(value).bit_length()


def oracle_bit_plane_counts(words, bits: int) -> np.ndarray:
    """Verbatim copy of the pre-vectorization per-position shift loop."""
    if bits == 32:
        w = np.asarray(words, dtype=np.uint32).ravel()
    else:
        w = np.asarray(words, dtype=np.uint64).ravel()
    counts = np.empty(bits, dtype=np.int64)
    one = w.dtype.type(1)
    for pos in range(bits):
        shift = w.dtype.type(bits - 1 - pos)
        counts[pos] = int(((w >> shift) & one).sum())
    return counts


def oracle_toggles_between(prev_flit, next_flit) -> int:
    a = np.asarray(prev_flit, dtype=np.uint8)
    b = np.asarray(next_flit, dtype=np.uint8)
    return sum(oracle_popcount(int(x)) for x in (a ^ b))


def oracle_encode_masked(pivot_index: int, block, active) -> np.ndarray:
    """Verbatim copy of the scalar VSCoder.encode_masked semantics."""
    block = np.asarray(block, dtype=np.uint32)
    active = np.asarray(active, dtype=bool)
    if not active.any():
        return block.copy()
    pivot = min(pivot_index, block.shape[0] - 1)
    if not active[pivot]:
        pivot = int(np.flatnonzero(active)[0])
    out = block.copy()
    out[active] = xnor(block[active], block[pivot])
    out[pivot] = block[pivot]
    return out


def oracle_tally_line(encoders: Encoders, tally: Tally, unit: Unit,
                      line_words: np.ndarray, is_store: bool,
                      subset=None) -> None:
    """Verbatim copy of the pre-vectorization GPUReplay._tally_line."""
    variants = encoders.data_variants(unit, line_words, "line")
    if subset is None:
        total = line_words.size * 32
        for variant, encoded in variants.items():
            ones = bu.hamming_weight(encoded)
            tally.add(unit, variant, is_store, total - ones, ones)
    else:
        if subset.size == 0:
            return
        total = subset.size * 32
        for variant, encoded in variants.items():
            ones = int(bu.popcount32(encoded[subset]).sum())
            tally.add(unit, variant, is_store, total - ones, ones)


def oracle_tally_inst_word(encoders: Encoders, tally: Tally, unit: Unit,
                           word: int, is_store: bool, count: int = 1) -> None:
    """Verbatim copy of the pre-vectorization GPUReplay._tally_inst_word."""
    arr = np.asarray([word], dtype=np.uint64)
    ones_base = int(bu.popcount64(arr)[0])
    ones_isa = int(bu.popcount64(encoders.isa.encode_words(arr))[0])
    total = 64 * count
    for variant, ones in (("base", ones_base), ("NV", ones_base),
                          ("VS", ones_base), ("ISA", ones_isa),
                          ("ALL", ones_isa)):
        tally.add(unit, variant, is_store, total - ones * count,
                  ones * count)


class OracleNoC(NoCStats):
    """NoCStats with the pre-vectorization per-flit _transmit loop."""

    def _transmit(self, channel, chunk_lists):
        n_flits = len(next(iter(chunk_lists.values())))
        self.flits += n_flits
        last = self._last.get(channel)
        if last is None:
            last = self._last[channel] = {
                v: np.zeros(self.flit_bytes, dtype=np.uint8)
                for v in VARIANTS
            }
        for variant in VARIANTS:
            prev = last[variant]
            for chunk in chunk_lists[variant]:
                flit = prev.copy()
                flit[:chunk.size] = chunk
                self.toggles[variant] += oracle_toggles_between(prev, flit)
                prev = flit
            last[variant] = prev


# ---------------------------------------------------------------------------
# Bit primitives
# ---------------------------------------------------------------------------

class TestPopcounts:
    @given(st.lists(u32s, max_size=64))
    def test_popcount32_matches_python(self, values):
        arr = np.asarray(values, dtype=np.uint32)
        expected = [oracle_popcount(v) for v in values]
        assert bu.popcount32(arr).tolist() == expected

    @given(st.lists(u64s, max_size=64))
    def test_popcount64_matches_python(self, values):
        arr = np.asarray(values, dtype=np.uint64)
        expected = [oracle_popcount(v) for v in values]
        assert bu.popcount64(arr).tolist() == expected

    def test_adversarial_words(self):
        a32 = np.asarray(ADVERSARIAL_U32, dtype=np.uint32)
        a64 = np.asarray(ADVERSARIAL_U64, dtype=np.uint64)
        assert bu.popcount32(a32).tolist() == [oracle_popcount(v)
                                               for v in ADVERSARIAL_U32]
        assert bu.popcount64(a64).tolist() == [oracle_popcount(v)
                                               for v in ADVERSARIAL_U64]

    def test_empty_inputs(self):
        assert bu.popcount32(np.empty(0, dtype=np.uint32)).size == 0
        assert bu.popcount64(np.empty(0, dtype=np.uint64)).size == 0
        assert bu.popcount64(np.empty((0, 4), dtype=np.uint64)).shape == (0, 4)

    def test_2d_shapes_preserved(self):
        arr = np.arange(12, dtype=np.uint64).reshape(3, 4)
        out = bu.popcount64(arr)
        assert out.shape == (3, 4)
        assert out.ravel().tolist() == [oracle_popcount(v)
                                        for v in arr.ravel()]

    @given(st.lists(u32s, min_size=1, max_size=32),
           st.lists(u64s, min_size=1, max_size=32))
    def test_table_fallback_matches_ufunc_path(self, v32, v64):
        """The pre-NumPy-2.0 lookup-table path must agree bit for bit."""
        a32 = np.asarray(v32, dtype=np.uint32)
        a64 = np.asarray(v64, dtype=np.uint64)
        fast32, fast64 = bu.popcount32(a32), bu.popcount64(a64)
        original = bu._HAS_BITWISE_COUNT
        bu._HAS_BITWISE_COUNT = False
        try:
            assert np.array_equal(bu.popcount32(a32), fast32)
            assert np.array_equal(bu.popcount64(a64), fast64)
        finally:
            bu._HAS_BITWISE_COUNT = original


class TestLeadingZeros:
    @given(st.lists(u32s, max_size=64))
    def test_matches_bit_length(self, values):
        arr = np.asarray(values, dtype=np.uint32)
        expected = [oracle_leading_zeros32(v) for v in values]
        assert bu.leading_zeros32(arr).tolist() == expected

    def test_adversarial(self):
        arr = np.asarray(ADVERSARIAL_U32, dtype=np.uint32)
        assert bu.leading_zeros32(arr).tolist() == [
            oracle_leading_zeros32(v) for v in ADVERSARIAL_U32]


class TestBitPlaneCounts:
    @given(st.lists(u32s, max_size=64))
    def test_u32_matches_shift_loop(self, values):
        arr = np.asarray(values, dtype=np.uint32)
        assert np.array_equal(bu.bit_plane_counts(arr, 32),
                              oracle_bit_plane_counts(arr, 32))

    @given(st.lists(u64s, max_size=64))
    def test_u64_matches_shift_loop(self, values):
        arr = np.asarray(values, dtype=np.uint64)
        assert np.array_equal(bu.bit_plane_counts(arr, 64),
                              oracle_bit_plane_counts(arr, 64))

    def test_adversarial_and_empty(self):
        for bits, adv, dtype in ((32, ADVERSARIAL_U32, np.uint32),
                                 (64, ADVERSARIAL_U64, np.uint64)):
            arr = np.asarray(adv, dtype=dtype)
            assert np.array_equal(bu.bit_plane_counts(arr, bits),
                                  oracle_bit_plane_counts(arr, bits))
            empty = np.empty(0, dtype=dtype)
            assert bu.bit_plane_counts(empty, bits).tolist() == [0] * bits


class TestSequenceToggles:
    @given(st.lists(st.lists(u8s, min_size=8, max_size=8),
                    min_size=2, max_size=16))
    def test_matches_pairwise_toggles(self, rows):
        flits = np.asarray(rows, dtype=np.uint8)
        expected = [oracle_toggles_between(flits[i - 1], flits[i])
                    for i in range(1, flits.shape[0])]
        assert bu.sequence_toggles(flits).tolist() == expected

    def test_agrees_with_toggles_between(self):
        rng = np.random.default_rng(7)
        flits = rng.integers(0, 256, (20, 32), dtype=np.uint8)
        per_pair = [bu.toggles_between(flits[i - 1], flits[i])
                    for i in range(1, 20)]
        assert bu.sequence_toggles(flits).tolist() == per_pair

    def test_short_and_invalid_inputs(self):
        assert bu.sequence_toggles(np.zeros((1, 8), np.uint8)).size == 0
        assert bu.sequence_toggles(np.zeros((0, 8), np.uint8)).size == 0
        with pytest.raises(ValueError):
            bu.sequence_toggles(np.zeros(8, np.uint8))

    def test_adversarial_patterns(self):
        alt = np.asarray([[0x00] * 4, [0xFF] * 4] * 4, dtype=np.uint8)
        assert bu.sequence_toggles(alt).tolist() == [32] * 7
        flat = np.full((5, 4), 0xAA, dtype=np.uint8)
        assert bu.sequence_toggles(flat).tolist() == [0] * 4


# ---------------------------------------------------------------------------
# Batched VS coding
# ---------------------------------------------------------------------------

class TestVSCoderBlocks:
    @given(st.integers(0, 8), st.integers(1, LANES), st.integers(0, 2**32))
    @settings(max_examples=50)
    def test_encode_blocks_matches_per_row(self, n_rows, lanes, seed):
        rng = np.random.default_rng(seed)
        blocks = rng.integers(0, 2**32, (n_rows, lanes), dtype=np.uint32)
        coder = VSCoder(pivot_index=21)
        batched = coder.encode_blocks(blocks)
        for row in range(n_rows):
            assert np.array_equal(batched[row],
                                  coder.encode_words(blocks[row]))

    @given(st.integers(0, 8), st.integers(1, LANES), st.integers(0, 2**32))
    @settings(max_examples=50)
    def test_encode_masked_blocks_matches_per_row(self, n_rows, lanes, seed):
        rng = np.random.default_rng(seed)
        blocks = rng.integers(0, 2**32, (n_rows, lanes), dtype=np.uint32)
        active = rng.random((n_rows, lanes)) < 0.6
        coder = VSCoder(pivot_index=21)
        batched = coder.encode_masked_blocks(blocks, active)
        for row in range(n_rows):
            expected = oracle_encode_masked(21, blocks[row], active[row])
            assert np.array_equal(batched[row], expected)
            assert np.array_equal(expected,
                                  coder.encode_masked(blocks[row],
                                                      active[row]))

    def test_adversarial_masks(self):
        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 2**32, (4, LANES), dtype=np.uint32)
        coder = VSCoder(pivot_index=21)
        masks = np.ones((4, LANES), dtype=bool)
        masks[0] = False                       # all-inactive: copy-through
        masks[1, 21] = False                   # pivot inactive: re-pivot
        masks[2, :] = False
        masks[2, 31] = True                    # single active lane
        batched = coder.encode_masked_blocks(blocks, masks)
        for row in range(4):
            assert np.array_equal(
                batched[row], oracle_encode_masked(21, blocks[row],
                                                   masks[row]))

    def test_decode_inverts_encode(self):
        rng = np.random.default_rng(9)
        blocks = rng.integers(0, 2**32, (6, LANES), dtype=np.uint32)
        active = rng.random((6, LANES)) < 0.5
        coder = VSCoder(pivot_index=21)
        encoded = coder.encode_masked_blocks(blocks, active)
        assert np.array_equal(coder.decode_masked_blocks(encoded, active),
                              blocks)

    def test_empty_blocks(self):
        coder = VSCoder(pivot_index=21)
        empty = np.empty((0, LANES), dtype=np.uint32)
        assert coder.encode_blocks(empty).shape == (0, LANES)
        assert coder.encode_masked_blocks(
            empty, np.empty((0, LANES), dtype=bool)).shape == (0, LANES)

    def test_shape_validation(self):
        coder = VSCoder(pivot_index=21)
        with pytest.raises(ValueError):
            coder.encode_blocks(np.zeros(LANES, dtype=np.uint32))
        with pytest.raises(ValueError):
            coder.encode_masked_blocks(np.zeros((2, 4), dtype=np.uint32),
                                       np.ones((2, 5), dtype=bool))


class TestDataVariantBlocks:
    @given(st.integers(1, 6), st.integers(0, 2**32),
           st.sampled_from([Unit.REG, Unit.SME, Unit.L2, Unit.L1D,
                            Unit.NOC]))
    @settings(max_examples=40)
    def test_matches_per_row_data_variants(self, n_rows, seed, unit):
        rng = np.random.default_rng(seed)
        blocks = rng.integers(0, 2**32, (n_rows, LANES), dtype=np.uint32)
        active = rng.random((n_rows, LANES)) < 0.7
        encoders = Encoders(isa_mask=0x1234, pivot_lane=21)
        for blocked, mask in (("line", None), ("warp", active)):
            batched = encoders.data_variant_blocks(unit, blocks, blocked,
                                                   mask)
            for row in range(n_rows):
                row_active = None if mask is None else mask[row]
                scalar = encoders.data_variants(unit, blocks[row], blocked,
                                                row_active)
                for variant in VARIANTS:
                    assert np.array_equal(batched[variant][row],
                                          scalar[variant]), (
                        f"{unit} {blocked} {variant} row {row}")


# ---------------------------------------------------------------------------
# Deferred tallying
# ---------------------------------------------------------------------------

class TestTallyBatch:
    @given(st.integers(0, 2**32), st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_warp_accesses_match_scalar_tally(self, seed, n_accesses):
        rng = np.random.default_rng(seed)
        encoders = Encoders(isa_mask=0xBEEF, pivot_lane=21)
        scalar_tally, batch_tally = Tally(), Tally()
        batch = TallyBatch(encoders, batch_tally)
        for __ in range(n_accesses):
            values = rng.integers(0, 2**32, LANES, dtype=np.uint32)
            active = rng.random(LANES) < rng.choice([0.0, 0.3, 1.0])
            unit = [Unit.REG, Unit.SME][int(rng.integers(2))]
            is_store = bool(rng.integers(2))
            encoders.tally_data(scalar_tally, unit, values, is_store,
                                blocked="warp", active=active)
            batch.add_warp(unit, values, active, is_store)
        batch.flush()
        assert batch_tally.counts == scalar_tally.counts

    @given(st.integers(0, 2**32), st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_line_accesses_match_scalar_tally(self, seed, n_accesses):
        rng = np.random.default_rng(seed)
        encoders = Encoders(isa_mask=0xBEEF, pivot_lane=21)
        scalar_tally, batch_tally = Tally(), Tally()
        batch = TallyBatch(encoders, batch_tally)
        for __ in range(n_accesses):
            line = rng.integers(0, 2**32, 32, dtype=np.uint32)
            unit = [Unit.L2, Unit.L1D, Unit.L1C][int(rng.integers(3))]
            is_store = bool(rng.integers(2))
            kind = int(rng.integers(3))
            if kind == 0:
                subset = None
            elif kind == 1:
                subset = np.flatnonzero(rng.random(32) < 0.4)
            else:
                subset = np.empty(0, dtype=np.int64)  # non-contributing
            oracle_tally_line(encoders, scalar_tally, unit, line,
                              is_store, subset)
            batch.add_line(unit, line, is_store, subset)
        batch.flush()
        assert batch_tally.counts == scalar_tally.counts

    @given(st.lists(st.tuples(u64s, st.booleans(), st.integers(1, 4)),
                    min_size=1, max_size=24))
    @settings(max_examples=25, deadline=None)
    def test_inst_words_match_scalar_tally(self, accesses):
        encoders = Encoders(isa_mask=0x0F0F0F0F0F0F0F0F, pivot_lane=21)
        scalar_tally, batch_tally = Tally(), Tally()
        batch = TallyBatch(encoders, batch_tally)
        for word, is_store, count in accesses:
            unit = Unit.IFB if is_store else Unit.L1I
            oracle_tally_inst_word(encoders, scalar_tally, unit, word,
                                   is_store, count)
            batch.add_inst(unit, word, is_store, count)
        batch.flush()
        assert batch_tally.counts == scalar_tally.counts

    def test_all_inactive_rows_create_no_entries(self):
        encoders = Encoders(isa_mask=0, pivot_lane=21)
        tally = Tally()
        batch = TallyBatch(encoders, tally)
        batch.add_warp(Unit.REG, np.ones(LANES, dtype=np.uint32),
                       np.zeros(LANES, dtype=bool), is_store=False)
        batch.add_line(Unit.L2, np.ones(32, dtype=np.uint32), False,
                       subset=np.empty(0, dtype=np.int64))
        batch.flush()
        assert tally.counts == {}

    def test_incremental_flush_matches_single_flush(self):
        rng = np.random.default_rng(5)
        encoders = Encoders(isa_mask=0xABCD, pivot_lane=21)
        small_tally, big_tally = Tally(), Tally()
        small = TallyBatch(encoders, small_tally, flush_every=2)
        big = TallyBatch(encoders, big_tally)
        for __ in range(11):
            values = rng.integers(0, 2**32, LANES, dtype=np.uint32)
            active = rng.random(LANES) < 0.5
            small.add_warp(Unit.REG, values, active, False)
            big.add_warp(Unit.REG, values, active, False)
        small.flush()
        big.flush()
        assert small_tally.counts == big_tally.counts


class TestNoCEquivalence:
    def _run_packets(self, noc: NoCStats, seed: int) -> None:
        rng = np.random.default_rng(seed)
        for __ in range(40):
            channel = ("req", int(rng.integers(3)))
            size = int(rng.integers(1, 70))  # exercises partial flits
            payload = rng.integers(0, 256, size, dtype=np.uint8)
            noc.send(channel, {v: payload.copy() for v in VARIANTS})
        noc.flush()

    @pytest.mark.parametrize("vcs", [1, 2])
    def test_transmit_matches_scalar_loop(self, vcs):
        fast = NoCStats(flit_bytes=16, virtual_channels=vcs)
        slow = OracleNoC(flit_bytes=16, virtual_channels=vcs)
        self._run_packets(fast, seed=11)
        self._run_packets(slow, seed=11)
        assert fast.toggles == slow.toggles
        assert fast.flits == slow.flits

    def test_distinct_variant_payloads(self):
        rng = np.random.default_rng(13)
        fast = NoCStats(flit_bytes=8)
        slow = OracleNoC(flit_bytes=8)
        for noc in (fast, slow):
            payload_rng = np.random.default_rng(99)
            for __ in range(12):
                payloads = {v: payload_rng.integers(0, 256, 20,
                                                    dtype=np.uint8)
                            for v in VARIANTS}
                noc.send(("resp", 0), payloads)
            noc.flush()
        assert fast.toggles == slow.toggles


class TestMemoryVectorization:
    @given(st.integers(0, 2**32))
    @settings(max_examples=40)
    def test_write_read_roundtrip_with_duplicates(self, seed):
        rng = np.random.default_rng(seed)
        mem = GlobalMemory(size_bytes=4096)
        addrs = rng.integers(0, 1024, LANES, dtype=np.int64) * 4
        vals = rng.integers(0, 2**32, LANES, dtype=np.uint32)
        mask = rng.random(LANES) < 0.7
        mem.write_u32(addrs, vals, mask=mask)
        # Scalar oracle: apply writes in order, last write wins.
        image = np.zeros(4096, dtype=np.uint8)
        for a, v, keep in zip(addrs, vals, mask):
            if keep:
                image[a:a + 4] = np.uint32(v).reshape(1).view(np.uint8)
        assert np.array_equal(mem.image, image)
        got = mem.read_u32(addrs)
        expected = np.ascontiguousarray(
            np.stack([image[a:a + 4] for a in addrs])).view(
                np.uint32).ravel()
        assert np.array_equal(got, expected)

    def test_empty_write_is_noop(self):
        mem = GlobalMemory(size_bytes=1024)
        before = mem.image.copy()
        mem.write_u32(np.asarray([4, 8], dtype=np.int64),
                      np.asarray([1, 2], dtype=np.uint32),
                      mask=np.asarray([False, False]))
        assert np.array_equal(mem.image, before)


# ---------------------------------------------------------------------------
# Trace memoization
# ---------------------------------------------------------------------------

class _Renamed:
    """Same app object, different name (and thus different memo keys)."""

    def __init__(self, app, name):
        self._app = app
        self.name = name

    def __getattr__(self, attr):
        return getattr(self._app, attr)


def _worker_cache_sizes(queue):
    from repro.kernels import get_app
    from repro.sim import cache_sizes, simulate_app
    simulate_app(get_app("VEC"))
    queue.put(cache_sizes())


class TestTraceMemo:
    def test_hit_and_miss_counters(self):
        from repro.kernels import get_app
        from repro.sim import cache_sizes, clear_caches, simulate_app
        clear_caches()
        app = get_app("VEC")
        first = simulate_app(app)
        sizes = cache_sizes()
        assert sizes["trace"] == 1
        assert sizes["trace_misses"] == 1
        assert sizes["trace_hits"] == 0

        # Same name: served by the (name, config) stats cache, the
        # content memo is never consulted.
        simulate_app(app)
        assert cache_sizes()["trace_hits"] == 0

        # Same bytes, different name: content-hash hit.
        renamed = simulate_app(_Renamed(app, "VEC-clone"))
        sizes = cache_sizes()
        assert sizes["trace_hits"] == 1
        assert sizes["trace_misses"] == 1
        assert sizes["trace"] == 1
        assert renamed.app_name == "VEC-clone"
        assert renamed.counts == first.counts
        assert renamed.noc_toggles == first.noc_toggles
        assert renamed.cycles == first.cycles
        clear_caches()

    def test_clear_caches_drops_memo_and_counters(self):
        from repro.kernels import get_app
        from repro.sim import cache_sizes, clear_caches, simulate_app
        clear_caches()
        simulate_app(get_app("VEC"))
        assert cache_sizes()["trace"] == 1
        clear_caches()
        sizes = cache_sizes()
        assert sizes == {"functional": 0, "stats": 0, "trace": 0,
                         "trace_hits": 0, "trace_misses": 0}

    def test_different_data_misses(self):
        from repro.kernels import get_app
        from repro.sim import cache_sizes, clear_caches, simulate_app
        clear_caches()
        simulate_app(get_app("VEC"))
        # A renamed app rebuilds with a name-derived seed, so its data
        # (and trace digest) genuinely differ: must be a miss.
        import dataclasses
        simulate_app(dataclasses.replace(get_app("VEC"), name="VEC-other"))
        sizes = cache_sizes()
        assert sizes["trace_misses"] == 2
        assert sizes["trace_hits"] == 0
        assert sizes["trace"] == 2
        clear_caches()

    def test_fault_runs_bypass_trace_memo(self):
        from repro.faults import FaultModel
        from repro.kernels import get_app
        from repro.sim import cache_sizes, clear_caches, simulate_app
        clear_caches()
        fm = FaultModel(mode="uniform", p_flip=1e-6, seed=1)
        simulate_app(get_app("VEC"), fault_model=fm)
        sizes = cache_sizes()
        assert sizes["trace"] == 0
        assert sizes["trace_hits"] == 0
        assert sizes["trace_misses"] == 0
        clear_caches()

    def test_parallel_workers_keep_process_local_memos(self):
        from repro.sim import cache_sizes, clear_caches
        clear_caches()
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        proc = ctx.Process(target=_worker_cache_sizes, args=(queue,))
        proc.start()
        worker_sizes = queue.get(timeout=120)
        proc.join(timeout=120)
        assert worker_sizes["trace"] == 1
        assert worker_sizes["trace_misses"] == 1
        # The parent's memo never saw the worker's entries.
        assert cache_sizes()["trace"] == 0


# ---------------------------------------------------------------------------
# End-to-end: a fully scalar replay of a real app equals the batched one
# ---------------------------------------------------------------------------

class _ScalarBatch:
    """TallyBatch stand-in that tallies immediately via the oracles."""

    def __init__(self, encoders, tally, flush_every=0):
        self.encoders = encoders
        self.tally = tally

    def add_warp(self, unit, values, active, is_store):
        self.encoders.tally_data(self.tally, unit, values, is_store,
                                 blocked="warp", active=active)

    def add_line(self, unit, line_words, is_store, subset=None):
        oracle_tally_line(self.encoders, self.tally, unit, line_words,
                          is_store, subset)

    def add_inst(self, unit, word, is_store, count=1):
        oracle_tally_inst_word(self.encoders, self.tally, unit, word,
                               is_store, count)

    def flush(self):
        pass


class TestEndToEndEquivalence:
    def test_scalar_pipeline_reproduces_batched_results(self, monkeypatch):
        """Simulate VEC twice — once on the vectorized pipeline, once
        with every deferred/batched path swapped for the pinned scalar
        oracles — and require identical tallies and NoC toggles."""
        from repro.core.masks import derive_mask
        from repro.kernels import get_app
        from repro.sim import _functional_pass, clear_caches
        from repro.arch.config import BASELINE_CONFIG
        import repro.arch.engine as engine_mod
        import repro.arch.gpu as gpu_mod
        import repro.arch.noc as noc_mod

        app = get_app("VEC")

        clear_caches()
        functional, __ = _functional_pass(app, 21)
        isa_mask = derive_mask(functional.trace.static_binary)
        encoders = Encoders(isa_mask=isa_mask, pivot_lane=21)
        fast = GPUReplay(BASELINE_CONFIG, encoders).run(functional.trace)
        fast_functional_counts = functional.tally.counts

        clear_caches()
        monkeypatch.setattr(engine_mod, "TallyBatch", _ScalarBatch)
        monkeypatch.setattr(gpu_mod, "TallyBatch", _ScalarBatch)
        monkeypatch.setattr(noc_mod, "NoCStats", OracleNoC)
        scalar_functional, __ = _functional_pass(app, 21)
        scalar_encoders = Encoders(isa_mask=isa_mask, pivot_lane=21)
        slow = GPUReplay(BASELINE_CONFIG,
                         scalar_encoders).run(scalar_functional.trace)

        assert scalar_functional.tally.counts == fast_functional_counts
        assert slow.tally.counts == fast.tally.counts
        assert slow.noc.stats.toggles == fast.noc.stats.toggles
        assert slow.noc.stats.flits == fast.noc.stats.flits
        assert slow.timing.cycles == fast.timing.cycles
        clear_caches()

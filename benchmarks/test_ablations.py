"""Benches for the ablation studies on the design knobs the paper fixes
(static ISA mask, pivot lane 21, BVF coders vs bus-invert)."""

from repro.experiments import (ablation_bus_invert, ablation_isa_mask,
                               ablation_pivot_lane)


def test_ablation_isa_mask(run_and_print):
    result = run_and_print(ablation_isa_mask)
    s = result.summary
    assert s["static_one_fraction"] > s["base_one_fraction"] + 0.3
    # The paper's trade-off: per-app dynamic masks buy little extra.
    assert s["dynamic_extra_gain"] < 0.10


def test_ablation_pivot_lane(run_and_print):
    result = run_and_print(ablation_pivot_lane)
    s = result.summary
    # Any fixed middle lane beats lane 0, prior work's default.
    middle_best = min(s["lane16_mean_excess"], s["lane21_mean_excess"],
                      s["lane24_mean_excess"])
    assert s["lane0_mean_excess"] >= middle_best
    assert s["aggregate_best_lane"] not in (0.0, 31.0)


def test_ablation_bus_invert(run_and_print):
    result = run_and_print(ablation_bus_invert)
    s = result.summary
    assert s["businvert_toggles"] < s["raw_toggles"]
    assert s["bvf_one_fraction"] > 0.6
    assert s["businvert_one_fraction"] < 0.6

"""Benches for the workload-profiling results: Figures 8, 9, 11, 12, 14
and Table 2, over the full 58-application suite."""

from repro.experiments import (fig08_narrow_value, fig09_bit_ratio,
                               fig11_lane_hamming, fig12_pivot_quality,
                               fig14_isa_bits, table2_masks)


def test_fig08_narrow_value(run_and_print):
    result = run_and_print(fig08_narrow_value)
    # Paper: ~9 leading zero bits per 32-bit word on average.
    assert 6.0 < result.summary["mean_leading_zeros"] < 14.0


def test_fig09_bit_ratio(run_and_print):
    result = run_and_print(fig09_bit_ratio)
    # Paper: ~22 of 32 bits are 0 on average.
    assert 19.0 < result.summary["mean_zero_bits"] < 28.0


def test_fig11_lane_hamming(run_and_print):
    result = run_and_print(fig11_lane_hamming)
    # The crossover the paper exploits: lane 0 is not the best pivot;
    # middle lanes have smaller mean Hamming distance than the edges.
    assert result.summary["best_lane"] != 0
    assert result.summary["middle_vs_edges"] < 1.0


def test_fig12_pivot_quality(run_and_print):
    result = run_and_print(fig12_pivot_quality)
    # A fixed middle pivot stays within a modest factor of per-app optimal.
    assert 1.0 <= result.summary["mean_excess"] < 1.8


def test_fig14_isa_bit_positions(run_and_print):
    result = run_and_print(fig14_isa_bits)
    # Paper: "Most positions prefer 0".
    assert result.summary["positions_preferring_zero"] > 40


def test_table2_masks(run_and_print):
    result = run_and_print(table2_masks)
    assert result.summary["encoded_one_fraction"] > \
        result.summary["baseline_one_fraction"]
    assert result.summary["encoded_one_fraction"] > 0.5

"""Benches for the Section 6.3 overhead table and the Section 7
discussion results (6T-BVF reliability, eDRAM BVF)."""

from repro.experiments import (discussion_6t_reliability, discussion_edram,
                               overhead_table)


def test_sec63_overhead(run_and_print):
    result = run_and_print(overhead_table)
    # Gate count within 20% of the paper's 133,920.
    assert 0.8 < result.summary["gate_ratio_vs_paper"] < 1.2
    # Dynamic power in the tens of milliwatts at both nodes.
    assert 10 < result.summary["dyn_mw_28nm"] < 150
    assert 10 < result.summary["dyn_mw_40nm"] < 200


def test_sec71_6t_reliability(run_and_print):
    result = run_and_print(discussion_6t_reliability)
    # Paper: the retrofit fails beyond 16 cells per bitline at 28nm.
    assert result.summary["max_safe_cells"] == 16


def test_sec72_edram(run_and_print):
    result = run_and_print(discussion_edram)
    for key, ratio in result.summary.items():
        # Accessing/refreshing 1 is several times cheaper than 0.
        assert ratio < 0.5, key

"""Shared benchmark harness: run an experiment once, print its table.

The benchmarks regenerate every table and figure of the paper's
evaluation over the full 58-application suite. Simulation results are
memoised inside :mod:`repro.sim`, so the suite is executed once per
configuration and shared by all benchmark files in the session.
"""

import pytest


@pytest.fixture
def run_and_print(benchmark):
    """Benchmark one experiment driver and print its table."""

    def runner(driver, *args, **kwargs):
        result = benchmark.pedantic(driver, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        print()
        print(result.to_text())
        return result

    return runner

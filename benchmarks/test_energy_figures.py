"""Benches for the energy evaluation: Figures 16-19 over the full suite."""

from repro.experiments import fig16_17_component_energy, fig18_19_chip_energy


def test_fig16_component_energy_28nm(run_and_print):
    result = run_and_print(fig16_17_component_energy, "28nm")
    # Who wins, per unit: the full design cuts every SRAM unit. SME
    # only enjoys the NV coder (VS excludes it, Table 1) and many apps
    # use no shared memory at all, so its mean reduction is the lowest.
    for unit in ("REG", "L1D", "L1I", "L1C", "L1T", "L2"):
        assert result.summary[f"{unit}_reduction"] > 0.1, unit
    assert result.summary["SME_reduction"] > 0.05
    # The NoC benefit materialises in the switching-activity factor
    # (paper: ~20% toggle reduction, mainly from VS); the unit's total
    # energy moves less because driver leakage is toggle-independent.
    assert result.summary["NOC_reduction"] > 0.05


def test_fig17_component_energy_40nm(run_and_print):
    result = run_and_print(fig16_17_component_energy, "40nm")
    for unit in ("REG", "L1D", "L2"):
        assert result.summary[f"{unit}_reduction"] > 0.15, unit
    assert result.summary["SME_reduction"] > 0.05


def test_fig18_chip_energy_28nm(run_and_print):
    result = run_and_print(fig18_19_chip_energy, "28nm")
    # Paper: ~21% average chip reduction at 28 nm.
    assert 0.14 < result.summary["mean_reduction"] < 0.30
    # Per-app spread: memory-intensive apps gain several times more
    # than the most compute-bound ones.
    assert result.summary["max_reduction"] > \
        3 * result.summary["min_reduction"]


def test_fig19_chip_energy_40nm(run_and_print):
    result = run_and_print(fig18_19_chip_energy, "40nm")
    # Paper: ~24% average chip reduction at 40 nm, above the 28 nm figure.
    assert 0.17 < result.summary["mean_reduction"] < 0.34

"""Benches for the circuit-level results: Figures 1, 5, 6 and the
Section 3.1 leakage table."""

from repro.experiments import (fig01_power_efficiency,
                               fig05_06_access_energy, leakage_asymmetry)


def test_fig01_power_efficiency(run_and_print):
    result = run_and_print(fig01_power_efficiency)
    assert result.summary["first_over_50_year"] == 2016


def test_fig05_access_energy_28nm(run_and_print):
    result = run_and_print(fig05_06_access_energy, "28nm")
    # Who wins: accessing 1 is several times cheaper than accessing 0.
    assert result.summary["read1_over_read0"] < 0.35
    assert result.summary["write1_over_write0"] < 0.35
    # The write-0 miss roughly doubles write energy (Figure 4-C).
    assert 1.5 < result.summary["bvf_write0_over_8t_write0"] < 2.5


def test_fig06_access_energy_40nm(run_and_print):
    result = run_and_print(fig05_06_access_energy, "40nm")
    assert result.summary["read1_over_read0"] < 0.35
    assert result.summary["write1_over_write0"] < 0.35


def test_sec31_leakage_asymmetry(run_and_print):
    result = run_and_print(leakage_asymmetry, "28nm")
    assert abs(result.summary["delta0"] - 0.0043) < 1e-3
    assert abs(result.summary["delta1"] - 0.0301) < 1e-3
    assert abs(result.summary["bit1_vs_bit0"] - 0.0961) < 1e-3

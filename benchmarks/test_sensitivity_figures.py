"""Benches for the sensitivity studies: Figures 20-23 over the full
suite (DVFS, warp schedulers, SRAM capacity, 6T vs 8T)."""

from repro.experiments import (fig20_dvfs, fig21_schedulers, fig22_capacity,
                               fig23_6t_vs_8t)


def test_fig20_dvfs(run_and_print):
    result = run_and_print(fig20_dvfs)
    for tech in ("28nm", "40nm"):
        reds = [v for k, v in result.summary.items()
                if k.startswith(f"reduction_{tech}")]
        assert len(reds) == 3
        # Paper: the savings percentage is consistent under DVFS.
        assert min(reds) > 0.10
        assert max(reds) - min(reds) < 0.15


def test_fig21_schedulers(run_and_print):
    result = run_and_print(fig21_schedulers)
    for tech in ("28nm", "40nm"):
        reds = [v for k, v in result.summary.items()
                if k.startswith(f"reduction_{tech}")]
        assert len(reds) == 3
        # Paper: effectiveness is consistent across GTO/LRR/two-level.
        assert min(reds) > 0.10
        assert max(reds) - min(reds) < 0.10


def test_fig22_capacity(run_and_print):
    result = run_and_print(fig22_capacity)
    for gpu in ("GTX-480", "Tesla-P100", "Tesla-K80"):
        red40 = result.summary[f"reduction_{gpu}_40nm"]
        red28 = result.summary[f"reduction_{gpu}_28nm"]
        # Paper: consistently high BVF-unit reduction (~52%/48%)
        # regardless of SRAM capacity generation.
        assert red40 > 0.35
        assert red28 > 0.30


def test_fig23_6t_vs_8t(run_and_print):
    result = run_and_print(fig23_6t_vs_8t)
    s = result.summary
    for tech in ("28nm", "40nm"):
        # Ordering: BVF-8T < 8T at nominal voltage, and a solid win
        # over the 6T baseline (paper: ~31.6%/32.7%).
        assert s[f"BVF-8T_{tech}_1.2"] < s[f"8T_{tech}_1.2"]
        assert s[f"bvf_vs_6t_{tech}"] > 0.15
        # Deep DVFS at 0.6 V (impossible for 6T) saves much more.
        assert s[f"BVF-8T_{tech}_0.6"] < 0.6 * s[f"BVF-8T_{tech}_1.2"]

"""Full-chip energy study over a benchmark suite slice.

Reproduces the Figure-18 style per-application stacked comparison on a
chosen subset of the 58 applications: baseline vs BVF chip energy with
the per-component breakdown, plus a DVFS mini-sweep — the workflow a
downstream user would run to evaluate BVF on their own workloads.

Run:  python examples/chip_study.py [suite]
      (suite in rodinia|parboil|sdk|shoc|lonestar|polybench|gpgpusim)
"""

import sys

from repro import ChipModel, apps_by_suite, simulate_suite
from repro.circuits import PSTATES
from repro.power import BVF_UNITS


def per_app_breakdown(suite_name: str) -> None:
    apps = apps_by_suite(suite_name)
    print(f"Simulating the {suite_name} suite "
          f"({', '.join(a.name for a in apps)})...")
    suite = simulate_suite(apps)
    model = ChipModel("40nm")

    warm = [u.name for u in BVF_UNITS] + ["NOC"]
    print(f"\n{'app':5s} {'baseline(J)':>12s} {'BVF(J)':>12s} "
          f"{'saved':>7s}  {'top BVF units':30s}")
    for name in suite.app_names:
        stats = suite.apps[name]
        base = model.baseline(stats)
        bvf = model.bvf(stats)
        units = sorted(
            ((k, v) for k, v in base.components.items() if k in warm),
            key=lambda kv: -kv[1])[:3]
        top = ", ".join(f"{k} {v / base.total_j:.0%}" for k, v in units)
        print(f"{name:5s} {base.total_j:12.3e} {bvf.total_j:12.3e} "
              f"{bvf.reduction_vs(base):7.1%}  {top}")

    mean = sum(
        model.bvf(s).reduction_vs(model.baseline(s))
        for s in suite.apps.values()) / len(suite.apps)
    print(f"\nsuite mean chip reduction @40nm: {mean:.1%} "
          "(paper, all 58 apps: ~24%)")


def dvfs_sweep(suite_name: str) -> None:
    suite = simulate_suite(apps_by_suite(suite_name))
    print("\nDVFS sweep (suite mean):")
    print(f"{'P-state':9s} {'Vdd':5s} {'freq':8s} {'reduction':>10s}")
    for pstate in PSTATES:
        model = ChipModel("40nm", vdd=pstate.vdd)
        reds = [model.bvf(s).reduction_vs(model.baseline(s))
                for s in suite.apps.values()]
        print(f"{pstate.name:9s} {pstate.vdd:4.1f}V "
              f"{pstate.freq_mhz:4d}MHz {sum(reds) / len(reds):10.1%}")


if __name__ == "__main__":
    suite_name = sys.argv[1] if len(sys.argv) > 1 else "polybench"
    per_app_breakdown(suite_name)
    dvfs_sweep(suite_name)

"""Quickstart: how much chip energy does BVF save on one application?

Simulates one GPU application end to end (functional SIMT execution,
scheduler-driven replay through the memory hierarchy), then prices the
run with the circuit-level energy model twice — once as the baseline
(conventional 8T SRAM, uncoded data) and once as the proposed design
(BVF-8T cells + all three coders) — and prints the breakdown.

Run:  python examples/quickstart.py [APP]
"""

import sys

from repro import ChipModel, get_app, simulate_app
from repro.core.spaces import Unit


def main(app_name: str = "ATA") -> None:
    app = get_app(app_name)
    print(f"Simulating {app.name} ({app.suite}: {app.description})...")
    stats = simulate_app(app)
    print(f"  {stats.instructions} warp-instructions, "
          f"{stats.cycles} cycles on {stats.used_sms} SMs, "
          f"L1D hit rate {stats.l1d_hit_rate:.0%}")

    print("\nData profile (the properties BVF exploits):")
    print(f"  mean leading zeros per word : "
          f"{stats.narrow.mean_leading_zeros:.1f} / 32")
    print(f"  zero bits per word          : "
          f"{stats.narrow.mean_zero_bits_per_word:.1f} / 32")
    reg_base = stats.one_fraction(Unit.REG, "base")
    reg_all = stats.one_fraction(Unit.REG, "ALL")
    print(f"  register bit-1 fraction     : {reg_base:.2f} -> {reg_all:.2f}"
          f"  (after NV+VS coding)")
    print(f"  NoC toggle rate             : "
          f"{stats.noc_toggle_rate('base'):.3f} -> "
          f"{stats.noc_toggle_rate('ALL'):.3f}")

    for tech in ("28nm", "40nm"):
        model = ChipModel(tech)
        baseline = model.baseline(stats)
        bvf = model.bvf(stats)
        print(f"\nChip energy at {tech}:")
        print(f"  baseline (conv. 8T, uncoded) : {baseline.total_j:.3e} J")
        print(f"  BVF-8T + NV/VS/ISA coders    : {bvf.total_j:.3e} J")
        print(f"  reduction                    : "
              f"{bvf.reduction_vs(baseline):.1%}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "ATA")

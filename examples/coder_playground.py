"""Coder design space: pivot lanes, masks and custom data.

Uses the public coder API directly (no simulator) to show how each
coder moves the BVF objective on different data distributions, then
sweeps the VS pivot lane over the simulated suite's register traffic —
the design-space exploration behind Figures 11/12 — and derives an ISA
mask from real simulated binaries (Table 2's method).

Run:  python examples/coder_playground.py
"""

import numpy as np

from repro import NVCoder, VSCoder, ISACoder, derive_mask, encoding_gain
from repro.core.masks import mask_to_hex
from repro.kernels import all_apps, narrow_ints, smooth_f32, sparse_f32
from repro.sim import simulate_app, simulate_suite


def coder_gains_on_distributions() -> None:
    rng = np.random.default_rng(0)
    datasets = {
        "narrow ints": narrow_ints(4096, rng),
        "smooth floats": smooth_f32(4096, rng).view(np.uint32),
        "sparse (70% zeros)": sparse_f32(4096, rng).view(np.uint32),
        "uniform random": rng.integers(0, 2**32, 4096, dtype=np.uint32),
    }
    nv, vs = NVCoder(), VSCoder()
    print("Bit-1 fraction before -> after coding")
    print(f"{'dataset':20s} {'base':>6s} {'NV':>6s} {'NV+VS':>6s}")
    for name, words in datasets.items():
        base = encoding_gain(words, words).baseline_one_fraction
        nved = nv.encode_words(words)
        nv_frac = encoding_gain(words, nved).encoded_one_fraction
        blocks = nved.reshape(-1, 32).copy()
        for i in range(blocks.shape[0]):
            blocks[i] = vs.encode_words(blocks[i])
        all_frac = encoding_gain(words, blocks.ravel()).encoded_one_fraction
        print(f"{name:20s} {base:6.3f} {nv_frac:6.3f} {all_frac:6.3f}")


def pivot_lane_sweep(n_apps: int = 12) -> None:
    """Which pivot lane minimises mean Hamming distance? (Fig 11/12)"""
    apps = all_apps()[:n_apps]
    agg = np.zeros(32)
    for app in apps:
        stats = simulate_app(app)
        d = stats.lanes.mean_distances
        if d.mean() > 0:
            agg += d / d.mean()
    agg /= len(apps)
    best = int(np.argmin(agg))
    print(f"\nPer-lane mean Hamming distance over {len(apps)} apps "
          "(normalised to lane 0):")
    curve = agg / agg[0]
    for lane in range(0, 32, 4):
        bars = " ".join(f"{curve[l]:.2f}" for l in range(lane, lane + 4))
        print(f"  lanes {lane:2d}-{lane + 3:2d}: {bars}")
    print(f"  best lane here: {best}; the paper's suite-wide optimum: 21; "
          f"lane 0 (the conventional choice) is "
          f"{'not ' if best != 0 else ''}optimal")


def derive_isa_mask(n_apps: int = 12) -> None:
    suite = simulate_suite(all_apps()[:n_apps])
    mask = suite.isa_profile.mask
    print(f"\nISA mask derived from {suite.isa_profile.instruction_count} "
          f"static instructions: {mask_to_hex(mask)}")
    coder = ISACoder(mask)
    sample = suite.apps[suite.app_names[0]].static_binary
    before = encoding_gain(sample, sample).baseline_one_fraction
    enc = coder.encode_words(sample)
    after = np.count_nonzero(
        np.unpackbits(enc.view(np.uint8))) / (sample.size * 64)
    print(f"instruction bit-1 fraction: {before:.3f} -> {after:.3f}")


if __name__ == "__main__":
    coder_gains_on_distributions()
    pivot_lane_sweep()
    derive_isa_mask()

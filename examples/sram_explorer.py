"""Circuit-level exploration: BVF asymmetries across cells and voltages.

Sweeps the switched-capacitance circuit model over cell types
(6T / conventional 8T / BVF-8T / gain-cell eDRAM), supply voltages and
process nodes, printing per-bit access energies and leakage — the data
behind Figures 5/6 and the Section 7 discussion. Also reproduces the
6T-BVF destructive-read limit.

Run:  python examples/sram_explorer.py
"""

import numpy as np

from repro import max_safe_cells_per_bitline, energy_table
from repro.circuits import TECH_28NM, TECH_40NM


def access_energy_sweep() -> None:
    print("Per-bit access energy (fJ), Set=32 array")
    print(f"{'node':6s} {'Vdd':5s} {'cell':9s} "
          f"{'read0':>8s} {'read1':>8s} {'write0':>8s} {'write1':>8s}")
    for tech in ("28nm", "40nm"):
        for vdd in (1.2, 0.9, 0.6):
            for cell in ("6T", "8T", "BVF-8T", "eDRAM-3T"):
                if cell == "6T" and vdd < 1.0:
                    continue  # 6T fails near threshold (Section 2.1)
                t = energy_table(cell, tech, vdd)
                print(f"{tech:6s} {vdd:4.1f}V {cell:9s} "
                      f"{t.read_fj[0]:8.2f} {t.read_fj[1]:8.2f} "
                      f"{t.write_fj[0]:8.2f} {t.write_fj[1]:8.2f}")


def leakage_sweep() -> None:
    print("\nPer-cell standby leakage (nW) at nominal voltage")
    print(f"{'node':6s} {'cell':9s} {'bit0':>8s} {'bit1':>8s} {'delta':>7s}")
    for tech in ("28nm", "40nm"):
        for cell in ("6T", "8T", "BVF-8T", "eDRAM-3T"):
            t = energy_table(cell, tech, 1.2)
            l0, l1 = (x * 1e9 for x in t.leak_w_per_cell)
            delta = (1 - l1 / l0) if l0 else 0.0
            print(f"{tech:6s} {cell:9s} {l0:8.3f} {l1:8.3f} {delta:6.1%}")


def reliability_limit() -> None:
    print("\n6T-BVF retrofit: destructive-read limit (Section 7.1)")
    for tech in (TECH_28NM, TECH_40NM):
        limit = max_safe_cells_per_bitline(tech)
        print(f"  {tech.name}: safe up to {limit} cells per bitline "
              f"(paper: fails beyond 16)")


def payoff_curve() -> None:
    """Expected energy vs bit-1 probability: why the coders matter."""
    from repro.circuits import AccessKind
    from repro.core import expected_access_energy_fj
    t = energy_table("BVF-8T", "40nm", 1.2)
    print("\nExpected BVF-8T access energy vs bit-1 fraction (40nm, fJ)")
    print(f"{'P(1)':>6s} {'read':>8s} {'write':>8s}")
    for p in np.linspace(0.0, 1.0, 6):
        r = expected_access_energy_fj(t, AccessKind.READ, p)
        w = expected_access_energy_fj(t, AccessKind.WRITE, p)
        print(f"{p:6.1f} {r:8.2f} {w:8.2f}")
    print("-> below P(1)=0.5 the BVF write speculation loses; the NV/VS/"
          "ISA coders push GPU streams to P(1)~0.9 where it wins big.")


if __name__ == "__main__":
    access_energy_sweep()
    leakage_sweep()
    reliability_limit()
    payoff_curve()
